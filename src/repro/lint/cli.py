"""``python -m repro.lint`` — the command-line front end.

Usage::

    python -m repro.lint [paths...]            # default: src
    python -m repro.lint --select frozen-config,no-wallclock src
    python -m repro.lint --ignore no-mutable-default src tests
    python -m repro.lint --format=json src     # machine-readable findings
    python -m repro.lint --list-rules          # the rule catalogue

Exit status: 0 clean, 1 findings, 2 usage error.  CI runs the tree-wide
invocation as part of the fast lint gate (see ``.github/workflows/ci.yml``
and ``docs/static-analysis.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from typing import List, Optional, Sequence

from repro.lint.registry import RULES, Rule, all_rules
from repro.lint.runner import lint_paths


def _split_names(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [name.strip() for name in raw.split(",") if name.strip()]


def _resolve_rules(
    select: Optional[List[str]], ignore: Optional[List[str]]
) -> List[Rule]:
    """Apply ``--select``/``--ignore`` to the registry, validating names."""
    rules = all_rules()  # also populates RULES
    known = set(RULES)
    for names in (select or []), (ignore or []):
        unknown = [n for n in names if n not in known]
        if unknown:
            raise SystemExit(
                f"error: unknown rule(s): {', '.join(unknown)}; "
                f"known rules: {', '.join(sorted(known))}"
            )
    if select is not None:
        rules = [r for r in rules if r.name in select]
    if ignore is not None:
        rules = [r for r in rules if r.name not in ignore]
    return rules


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.name}: {rule.summary}")
        lines.append(
            textwrap.fill(
                rule.rationale, width=76, initial_indent="    ",
                subsequent_indent="    ",
            )
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Determinism & invariant static analysis for the simulator "
            "(see docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = _resolve_rules(_split_names(args.select), _split_names(args.ignore))
    findings = lint_paths(args.paths, rules=rules)

    if args.format == "json":
        print(json.dumps([d.to_dict() for d in findings], indent=2))
    else:
        for diag in findings:
            print(diag.format())
        if findings:
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"{len(findings)} {noun}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
