"""Shared lock-scope analysis for the concurrency rule pack.

``lock-discipline`` and ``cross-thread-mutable-state`` both need the same
question answered about every statement in a method: *is it lexically
inside one of the class's designated lock scopes?*  A designated lock is

* an instance attribute typed :class:`threading.Lock`/``RLock`` (inferred
  from ``self._mu = threading.Lock()`` or an annotation), entered as
  ``with self._mu:``; or
* a ``@contextmanager``-decorated method of the class (the
  ``ResultStore._locked()`` flock idiom), entered as
  ``with self._locked():``.

The walk is lexical and per-method; a method whose writes are protected
by its *callers'* lock scopes (``_heal_tail`` called from ``put`` under
``_locked()``) is handled by the rules themselves via the call sites this
module also reports.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import decorator_parts
from repro.lint.callgraph import iter_body_nodes
from repro.lint.project import ClassInfo, ProjectContext

#: attribute types treated as in-process mutual-exclusion locks.
LOCK_CLASSES = frozenset({"threading.Lock", "threading.RLock"})


def lock_attrs(project: ProjectContext, cls: ClassInfo) -> Set[str]:
    """Instance attributes of ``cls`` typed as locks (bases included)."""
    out: Set[str] = set()
    seen: Set[str] = set()
    queue = [cls.qualname]
    while queue:
        current = queue.pop(0)
        if current in seen:
            continue
        seen.add(current)
        info = project.classes.get(current)
        if info is None:
            continue
        for attr, typ in info.attr_types.items():
            if typ in LOCK_CLASSES:
                out.add(attr)
        queue.extend(info.base_names)
    return out


def contextmanager_methods(cls: ClassInfo) -> Set[str]:
    """Names of ``@contextmanager``-decorated methods of ``cls``."""
    out: Set[str] = set()
    for name, method in cls.methods.items():
        for deco in getattr(method.node, "decorator_list", []):
            parts = decorator_parts(deco)
            if parts and parts[-1] == "contextmanager":
                out.add(name)
    return out


def _is_lock_item(
    item: ast.withitem, self_name: str, locks: Set[str], cms: Set[str]
) -> bool:
    expr = item.context_expr
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == self_name
        and expr.attr in locks
    ):
        return True  # with self._mu:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and isinstance(expr.func.value, ast.Name)
        and expr.func.value.id == self_name
        and expr.func.attr in cms
    )  # with self._locked():


def self_param_name(fn: ast.AST) -> Optional[str]:
    """The receiver parameter name of a method node, if it has one."""
    args = getattr(fn, "args", None)
    if args is None or not args.args:
        return None
    return str(args.args[0].arg)


def iter_locked_nodes(
    fn: ast.AST, self_name: str, locks: Set[str], cms: Set[str]
) -> Iterator[Tuple[ast.AST, bool]]:
    """Yield ``(node, locked)`` for every body node of one method.

    ``locked`` is True when the node sits lexically inside a ``with``
    holding a designated lock.  Nested def/lambda bodies are excluded
    (own scope; the lock state at definition time says nothing about the
    lock state at call time).
    """
    def walk(node: ast.AST, locked: bool) -> Iterator[Tuple[ast.AST, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            child_locked = locked
            if isinstance(child, (ast.With, ast.AsyncWith)) and any(
                _is_lock_item(item, self_name, locks, cms)
                for item in child.items
            ):
                child_locked = True
            yield child, child_locked
            yield from walk(child, child_locked)

    yield from walk(fn, False)


class AttrWrite:
    """One mutation of ``self.<attr>`` inside a method."""

    __slots__ = ("attr", "node", "locked", "method")

    def __init__(
        self, attr: str, node: ast.AST, locked: bool, method: str
    ) -> None:
        self.attr = attr
        self.node = node
        self.locked = locked
        #: qualname of the containing method
        self.method = method


def _written_self_attr(node: ast.AST, self_name: str) -> Optional[str]:
    """The ``self.<attr>`` an assignment/delete/augassign target mutates.

    Covers plain attribute stores, ``self.x[...] = ...`` subscript stores
    (mutating the container held in ``x``), ``del self.x[...]``, in-place
    operators, and mutating method calls are *not* covered (a ``.append``
    is invisible — documented limit).
    """
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    else:
        return None
    for target in targets:
        expr = target
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self_name
        ):
            return expr.attr
    return None


def collect_attr_writes(
    project: ProjectContext, cls: ClassInfo
) -> List[AttrWrite]:
    """Every ``self.<attr>`` mutation in ``cls``'s methods, with lock
    state.  ``__init__`` is skipped: construction happens-before any
    sharing, so its writes can never race."""
    locks = lock_attrs(project, cls)
    cms = contextmanager_methods(cls)
    out: List[AttrWrite] = []
    for name, method in cls.methods.items():
        if name == "__init__":
            continue
        self_name = self_param_name(method.node)
        if self_name is None:
            continue
        for node, locked in iter_locked_nodes(
            method.node, self_name, locks, cms
        ):
            attr = _written_self_attr(node, self_name)
            if attr is not None:
                out.append(AttrWrite(attr, node, locked, method.qualname))
    return out
