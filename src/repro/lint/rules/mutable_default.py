"""``no-mutable-default``: no shared mutable default arguments."""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import FileContext, Rule, register

#: constructor names whose call as a default creates a fresh-but-shared
#: mutable object.
MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in MUTABLE_CALLS
    return False


@register
class NoMutableDefault(Rule):
    """Flag mutable default parameter values anywhere in the tree."""

    name = "no-mutable-default"
    summary = "no list/dict/set (or constructor-call) default arguments"
    rationale = (
        "A mutable default is evaluated once and shared by every call; "
        "state then leaks between invocations — and in this codebase, "
        "between *jobs*, which must be pure functions of their arguments "
        "for cache keys and the serial/parallel bit-identity guarantee to "
        "hold. Use None and construct inside the function (or "
        "dataclasses.field(default_factory=...) for specs)."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    where = (
                        f"function {node.name!r}"
                        if not isinstance(node, ast.Lambda)
                        else "lambda"
                    )
                    yield ctx.diag(
                        self.name,
                        default,
                        f"mutable default argument in {where} is shared "
                        "across calls; default to None and build inside",
                    )
