"""``no-swallowed-oserror``: no silent I/O failure in engine/store code."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import FileContext, Rule, register

#: exception names whose silent capture this rule forbids (``IOError``
#: and ``EnvironmentError`` are aliases of ``OSError`` since Python 3.3).
_OSERROR_NAMES = frozenset({"OSError", "IOError", "EnvironmentError"})

#: module prefix defining *engine scope*: the executors, the persistent
#: store, and everything else whose I/O failures must surface in counters.
_ENGINE_PREFIX = "repro.engine"


def _caught_oserror(handler: ast.ExceptHandler) -> Optional[str]:
    """The OSError-family name a handler catches, if any.

    Matches a bare name (``except OSError:``), a dotted terminal
    (``except builtins.OSError:``), or any member of a tuple clause
    (``except (ValueError, OSError):``).  A bare ``except:`` / ``except
    Exception:`` is out of scope — broader handlers are the bare-except
    linters' turf; this rule is about I/O errors *specifically* being
    treated as ignorable.
    """
    clause = handler.type
    if clause is None:
        return None
    exprs = clause.elts if isinstance(clause, ast.Tuple) else [clause]
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in _OSERROR_NAMES:
            return expr.id
        if isinstance(expr, ast.Attribute) and expr.attr in _OSERROR_NAMES:
            return expr.attr
    return None


def _is_silent(body: List[ast.stmt]) -> bool:
    """Whether a handler body does nothing observable: only ``pass``,
    ``...``, or bare constant expressions (docstring-style no-ops)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue
        return False
    return True


@register
class NoSwallowedOSError(Rule):
    """Flag ``except OSError: pass`` (and aliases) in engine scope."""

    name = "no-swallowed-oserror"
    summary = (
        "engine and store code must count or log a caught OSError, "
        "never swallow it with a bare pass"
    )
    rationale = (
        "The engine's durability story is built on counters: a failed "
        "store append, an unkillable worker, an unwritable cache "
        "directory are all *expected* conditions that must degrade "
        "gracefully — but 'gracefully' means counted (write_errors), "
        "logged once, and surfaced through counters(), the telemetry "
        "registry and the run manifest, so a provenance record can show "
        "that results were recomputed rather than served from a store "
        "that was silently dropping writes. An `except OSError: pass` "
        "hides exactly that evidence: the run looks healthy while its "
        "cache, metrics sidecar, or worker pool quietly stopped "
        "persisting anything (the bug this rule was distilled from). "
        "Handle the error — increment a counter, emit a log line, or "
        "re-raise — or annotate the intentional rare case with "
        "`# repro: allow-no-swallowed-oserror`."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        module = ctx.module
        if module != _ENGINE_PREFIX and not module.startswith(
            _ENGINE_PREFIX + "."
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _caught_oserror(node)
            if caught is None or not _is_silent(node.body):
                continue
            yield ctx.diag(
                self.name,
                node,
                f"silently swallowed {caught}; count it (write_errors), "
                "log it, or re-raise — a dropped I/O error hides real "
                "store/executor degradation",
            )
