"""``cache-key-completeness``: every spec field feeds the cache key."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.astutil import (
    class_methods,
    dataclass_decorator,
    dataclass_fields,
    self_attribute_reads,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import FileContext, Rule, register

#: methods that define a cache identity, in precedence order: when a class
#: has both, ``cache_key`` is the identity and typically folds
#: ``fingerprint`` in.
KEY_METHODS = ("cache_key", "fingerprint")

#: dataclasses-module helpers that serialise *every* field — calling one of
#: these on ``self`` covers all fields at once.
WHOLE_OBJECT_HELPERS = frozenset({"astuple", "asdict", "fields", "replace"})


def _covers_all_fields(method: ast.AST) -> bool:
    """Whether the method serialises the whole object (astuple(self), ...)."""
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in WHOLE_OBJECT_HELPERS:
            continue
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id == "self":
                return True
    return False


@register
class CacheKeyCompleteness(Rule):
    """Cross-check dataclass fields against their cache-key method."""

    name = "cache-key-completeness"
    summary = "every dataclass field must feed its cache_key()/fingerprint()"
    rationale = (
        "The ResultStore is content-addressed: two jobs with the same key "
        "are the same computation. A field that does not participate in "
        "the key (the way every ContestJob knob feeds ContestJob.cache_key "
        "in engine/jobs.py) silently aliases distinct jobs onto one cache "
        "entry, and the store serves a result computed under different "
        "semantics — the worst kind of corruption, because every test that "
        "hits the warm cache agrees with the wrong answer."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if dataclass_decorator(node) is None:
                continue
            methods = class_methods(node)
            key_method = None
            for name in KEY_METHODS:
                if name in methods:
                    key_method = methods[name]
                    break
            if key_method is None:
                continue
            fields = dict(dataclass_fields(node))
            if not fields:
                continue
            if _covers_all_fields(key_method):
                continue
            covered: Set[str] = set(self_attribute_reads(key_method))
            for field_name, field_node in fields.items():
                if field_name not in covered:
                    yield ctx.diag(
                        self.name,
                        field_node,
                        f"field {field_name!r} of {node.name} does not feed "
                        f"{key_method.name}(); two jobs differing only in "
                        "it would alias one cache entry",
                    )
