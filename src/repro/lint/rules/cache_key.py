"""``cache-key-completeness``: every spec field feeds the cache key."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.astutil import (
    class_methods,
    dataclass_decorator,
    dataclass_fields,
    self_attribute_reads,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import FunctionInfo, ProjectContext
from repro.lint.registry import FileContext, Rule, register

#: methods that define a cache identity, in precedence order: when a class
#: has both, ``cache_key`` is the identity and typically folds
#: ``fingerprint`` in.
KEY_METHODS = ("cache_key", "fingerprint")

#: dataclasses-module helpers that serialise *every* field — calling one of
#: these on ``self`` covers all fields at once.
WHOLE_OBJECT_HELPERS = frozenset({"astuple", "asdict", "fields", "replace"})


def _covers_all_fields(method: ast.AST, obj_name: str = "self") -> bool:
    """Whether the method serialises the whole object (astuple(self), ...)."""
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in WHOLE_OBJECT_HELPERS:
            continue
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id == obj_name:
                return True
    return False


def _attribute_reads(node: ast.AST, obj_name: str) -> Set[str]:
    """Attributes read off ``obj_name`` anywhere under ``node``."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == obj_name
        ):
            out.add(sub.attr)
    return out


def _obj_arg_positions(call: ast.Call, obj_name: str) -> List[int]:
    """Positional indices (and -1 per keyword) where ``obj_name`` is
    passed; keyword passes are resolved by parameter name instead."""
    positions = [
        i for i, arg in enumerate(call.args)
        if isinstance(arg, ast.Name) and arg.id == obj_name
    ]
    return positions


def _helper_coverage(
    project: ProjectContext,
    fn_qualname: str,
    fn: FunctionInfo,
    param: str,
    depth: int,
    seen: Set[Tuple[str, str]],
) -> Tuple[Set[str], bool]:
    """Fields a helper reads off the object passed as ``param``.

    Follows the object one more level when the helper forwards it to
    another resolvable project function; returns ``(reads, covers_all)``
    where ``covers_all`` means a whole-object helper consumed it.
    """
    if depth > 3 or (fn_qualname, param) in seen:
        return set(), False
    seen.add((fn_qualname, param))
    reads = _attribute_reads(fn.node, param)
    if _covers_all_fields(fn.node, param):
        return reads, True
    graph = project.graph
    sites = {
        id(site.node): site.callee
        for site in graph.out_edges.get(fn_qualname, ())
        if site.kind == "call"
    }
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        callee_name = sites.get(id(node))
        if callee_name is None:
            continue
        callee = project.functions.get(callee_name)
        if callee is None:
            continue
        for index in _obj_arg_positions(node, param):
            target = _param_at(callee, index)
            if target is None:
                continue
            sub_reads, sub_all = _helper_coverage(
                project, callee_name, callee, target, depth + 1, seen
            )
            reads |= sub_reads
            if sub_all:
                return reads, True
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name) and kw.value.id == param and (
                kw.arg is not None
            ):
                sub_reads, sub_all = _helper_coverage(
                    project, callee_name, callee, kw.arg, depth + 1, seen
                )
                reads |= sub_reads
                if sub_all:
                    return reads, True
    return reads, False


def _param_at(fn: FunctionInfo, index: int) -> Optional[str]:
    """The parameter name at a positional index (skipping method self)."""
    args = getattr(fn.node, "args", None)
    if args is None:
        return None
    params = [a.arg for a in args.args]
    if fn.class_name is not None and params:
        params = params[1:]
    if 0 <= index < len(params):
        return str(params[index])
    return None


@register
class CacheKeyCompleteness(Rule):
    """Cross-check dataclass fields against their cache-key method."""

    name = "cache-key-completeness"
    summary = "every dataclass field must feed its cache_key()/fingerprint()"
    rationale = (
        "The ResultStore is content-addressed: two jobs with the same key "
        "are the same computation. A field that does not participate in "
        "the key (the way every ContestJob knob feeds ContestJob.cache_key "
        "in engine/jobs.py) silently aliases distinct jobs onto one cache "
        "entry, and the store serves a result computed under different "
        "semantics — the worst kind of corruption, because every test that "
        "hits the warm cache agrees with the wrong answer. In project "
        "mode the check follows fields across module boundaries: a key "
        "method handing self to a serialisation helper in another module "
        "gets credit for the fields that helper (transitively) reads."
    )
    #: the project pass re-runs the same audit with cross-module helper
    #: resolution; running both would double-report every finding.
    project_replaces_check = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._check_tree(ctx.tree, ctx.path, project=None)

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        for info in project.modules.values():
            yield from self._check_tree(info.tree, info.path, project)

    def _check_tree(
        self, tree: ast.Module, path: str, project: Optional[ProjectContext]
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if dataclass_decorator(node) is None:
                continue
            methods = class_methods(node)
            key_method = None
            for name in KEY_METHODS:
                if name in methods:
                    key_method = methods[name]
                    break
            if key_method is None:
                continue
            fields = dict(dataclass_fields(node))
            if not fields:
                continue
            if _covers_all_fields(key_method):
                continue
            covered: Set[str] = set(self_attribute_reads(key_method))
            if project is not None:
                extra, covers_all = self._cross_module_coverage(
                    project, node, key_method
                )
                if covers_all:
                    continue
                covered |= extra
            for field_name, field_node in fields.items():
                if field_name not in covered:
                    yield Diagnostic(
                        rule=self.name,
                        path=path,
                        line=getattr(field_node, "lineno", 1),
                        col=getattr(field_node, "col_offset", 0),
                        message=(
                            f"field {field_name!r} of {node.name} does not "
                            f"feed {key_method.name}(); two jobs differing "
                            "only in it would alias one cache entry"
                        ),
                    )

    def _cross_module_coverage(
        self,
        project: ProjectContext,
        cls_node: ast.ClassDef,
        key_method: ast.FunctionDef,
    ) -> Tuple[Set[str], bool]:
        """Fields covered by helpers the key method hands ``self`` to."""
        method_qual = None
        for cls in project.classes.values():
            if cls.node is cls_node:
                info = cls.methods.get(key_method.name)
                if info is not None:
                    method_qual = info.qualname
                break
        if method_qual is None:
            return set(), False  # nested class: indexing did not see it
        args = key_method.args.args
        self_name = args[0].arg if args else "self"
        graph = project.graph
        sites = {
            id(site.node): site.callee
            for site in graph.out_edges.get(method_qual, ())
            if site.kind == "call"
        }
        covered: Set[str] = set()
        seen: Set[Tuple[str, str]] = set()
        for node in ast.walk(key_method):
            if not isinstance(node, ast.Call):
                continue
            callee_name = sites.get(id(node))
            if callee_name is None:
                continue
            callee = project.functions.get(callee_name)
            if callee is None:
                continue
            targets = [
                _param_at(callee, i)
                for i in _obj_arg_positions(node, self_name)
            ] + [
                kw.arg for kw in node.keywords
                if isinstance(kw.value, ast.Name)
                and kw.value.id == self_name
            ]
            for target in targets:
                if target is None:
                    continue
                reads, covers_all = _helper_coverage(
                    project, callee_name, callee, target, 0, seen
                )
                covered |= reads
                if covers_all:
                    return covered, True
        return covered, False
