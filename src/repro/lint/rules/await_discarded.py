"""``await-discarded``: calling a coroutine function without awaiting it."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import iter_body_nodes
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectContext
from repro.lint.registry import Rule, register


@register
class AwaitDiscarded(Rule):
    """Flag coroutine calls whose result is silently dropped."""

    name = "await-discarded"
    summary = "a coroutine called as a bare statement never actually runs"
    rationale = (
        "Calling an async def returns a coroutine object; as a bare "
        "expression statement it is discarded unawaited, so the body — "
        "the drain, the shutdown, the store write — silently never "
        "executes, and the only symptom is a 'coroutine was never "
        "awaited' warning long after the test passed vacuously. The "
        "call graph knows which project functions are async (including "
        "across modules), so the dropped call is caught at the call "
        "site: await it, or hand it to asyncio.create_task/gather if it "
        "really should run concurrently."
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        graph = project.graph
        for fn in project.iter_functions():
            sites = {
                id(site.node): site.callee
                for site in graph.out_edges.get(fn.qualname, ())
                if site.kind == "call"
            }
            if not sites:
                continue
            for node in iter_body_nodes(fn.node):
                if not (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                callee = sites.get(id(node.value))
                if callee is None:
                    continue
                target = project.functions.get(callee)
                if target is None or not target.is_async:
                    continue
                yield Diagnostic(
                    rule=self.name,
                    path=fn.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    message=(
                        f"result of coroutine '{target.short_name}' is "
                        "discarded — the body never runs; await it or "
                        "wrap it in asyncio.create_task(...)"
                    ),
                )
