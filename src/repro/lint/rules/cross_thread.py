"""``cross-thread-mutable-state``: loop/worker shared writes need a lock."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import CallGraph, CallSite
from repro.lint.concurrency import AttrWrite, collect_attr_writes
from repro.lint.dataflow import async_functions, display_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectContext
from repro.lint.registry import Rule, register


def _closure_with_paths(
    graph: CallGraph, roots: Set[str]
) -> Dict[str, Optional[CallSite]]:
    """Reachable nodes over ``call`` edges, with the edge that found each.

    Roots map to ``None``; every other node maps to the call site whose
    callee it is, so a witness chain can be rebuilt by climbing callers.
    """
    parents: Dict[str, Optional[CallSite]] = {r: None for r in roots}
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        for site in graph.out_edges.get(node, ()):
            if site.kind != "call" or site.callee in parents:
                continue
            parents[site.callee] = site
            frontier.append(site.callee)
    return parents


def _chain(
    node: str, parents: Dict[str, Optional[CallSite]], project: ProjectContext
) -> str:
    names = [node]
    seen = {node}
    current = parents.get(node)
    while current is not None and current.caller not in seen:
        names.append(current.caller)
        seen.add(current.caller)
        current = parents.get(current.caller)
    return " -> ".join(display_name(n, project) for n in reversed(names))


@register
class CrossThreadMutableState(Rule):
    """Instance state written from both the event loop and worker threads."""

    name = "cross-thread-mutable-state"
    summary = (
        "state written from both the event loop and executor workers "
        "must be lock-protected"
    )
    rationale = (
        "The service keeps per-job records on the loop thread while the "
        "batcher runs the engine (and the store underneath it) on an "
        "executor thread; an attribute both sides write without a lock "
        "is a data race whose loss shows up as drifting cache counters "
        "or a torn entries dict — nondeterminism in the very layer that "
        "exists to guarantee bit-identical reruns. The rule computes "
        "which methods run on the loop (reachable from async defs) and "
        "which on workers (reachable from callables handed to "
        "run_in_executor/submit/Thread), and flags attributes written "
        "unlocked on both sides. Writes inside a designated lock scope "
        "and in __init__ (construction happens-before sharing) are "
        "exempt."
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        graph = project.graph
        loop_roots = async_functions(project)
        worker_roots = {
            site.callee
            for site in graph.dispatches
            if site.callee in project.functions
        }
        if not loop_roots or not worker_roots:
            return
        loop_side = _closure_with_paths(graph, loop_roots)
        worker_side = _closure_with_paths(graph, worker_roots)
        for cls in project.classes.values():
            writes = collect_attr_writes(project, cls)
            if not writes:
                continue
            by_attr: Dict[str, Tuple[List[AttrWrite], List[AttrWrite]]] = {}
            for write in writes:
                if write.locked:
                    continue
                sides = by_attr.setdefault(write.attr, ([], []))
                if write.method in loop_side:
                    sides[0].append(write)
                if write.method in worker_side:
                    sides[1].append(write)
            for attr in sorted(by_attr):
                loop_writes, worker_writes = by_attr[attr]
                if not loop_writes or not worker_writes:
                    continue
                anchor = min(
                    loop_writes, key=lambda w: getattr(w.node, "lineno", 1)
                )
                worker = worker_writes[0]
                yield Diagnostic(
                    rule=self.name,
                    path=cls.path,
                    line=getattr(anchor.node, "lineno", 1),
                    col=getattr(anchor.node, "col_offset", 0),
                    message=(
                        f"'{cls.node.name}.{attr}' is written on the "
                        f"event loop "
                        f"({_chain(anchor.method, loop_side, project)}) "
                        f"and from a worker thread "
                        f"({_chain(worker.method, worker_side, project)}) "
                        "without a lock; guard both writes with a "
                        "threading.Lock"
                    ),
                )
