"""``duplicate-def``: a name bound twice in one class body shadows silently."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import FileContext, Rule, register

#: decorator attribute accesses that legitimately re-bind an existing class
#: attribute: property accessors and ``singledispatch(method)``'s
#: ``.register``.
_REBIND_ATTRS = frozenset(
    {"setter", "getter", "deleter", "register", "overload"}
)


def _is_rebind_decorator(dec: ast.expr) -> bool:
    """Whether the decorator makes re-binding the name intentional
    (``@x.setter`` and friends, ``@dispatcher.register``, ``@overload``)."""
    if isinstance(dec, ast.Call):
        return _is_rebind_decorator(dec.func)
    if isinstance(dec, ast.Attribute):
        return dec.attr in _REBIND_ATTRS
    if isinstance(dec, ast.Name):
        return dec.id == "overload"
    return False


def _bound_names(stmt: ast.stmt) -> Iterator[Tuple[str, ast.stmt]]:
    """Names a direct class-body statement binds, with the binding node.

    Only plain ``def``/assignment forms count: conditional definitions
    (``if TYPE_CHECKING`` / ``try`` import fallbacks) are nested statements
    and deliberately out of scope — they bind alternatives, not duplicates.
    """
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        if not any(_is_rebind_decorator(d) for d in stmt.decorator_list):
            yield stmt.name, stmt
    elif isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                yield target.id, stmt
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name):
            yield stmt.target.id, stmt


@register
class DuplicateDef(Rule):
    """Flag a class attribute defined twice in the same class body."""

    name = "duplicate-def"
    summary = "a class attribute bound twice; the second silently shadows"
    rationale = (
        "Python class bodies execute top to bottom, so a method, property "
        "or field defined twice raises nothing — the later binding simply "
        "replaces the earlier one, and the shadowed definition (often the "
        "one with the docstring, or the one someone just edited) is dead "
        "code that still reads as live. In a timing model a silently "
        "shadowed property is a silently wrong counter. Deliberate "
        "re-binding has explicit forms the rule recognises: property "
        "setter/getter/deleter accessors, singledispatch .register, and "
        "typing @overload."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            first_seen: Dict[str, ast.stmt] = {}
            for stmt in node.body:
                for name, binding in _bound_names(stmt):
                    earlier = first_seen.get(name)
                    if earlier is None:
                        first_seen[name] = binding
                        continue
                    yield ctx.diag(
                        self.name,
                        binding,
                        f"{name!r} is already defined in class {node.name} "
                        f"at line {earlier.lineno}; this re-definition "
                        "silently shadows it",
                    )
