"""``no-dict-order-dependence``: sorted iteration over sets in model code."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import FileContext, Rule, register

SET_CONSTRUCTORS = frozenset({"set", "frozenset"})


def _set_expr_reason(node: ast.expr) -> Optional[str]:
    """Why ``node`` evaluates to a set (None when it does not).

    Syntactic only — a set held in a variable is not tracked.  Dict
    iteration is *not* flagged: CPython dicts preserve insertion order,
    which is deterministic when insertions are.
    """
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in SET_CONSTRUCTORS:
            return f"{func.id}(...) call"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        left = _set_expr_reason(node.left)
        right = _set_expr_reason(node.right)
        if left or right:
            return "set-algebra expression"
    return None


@register
class NoDictOrderDependence(Rule):
    """Forbid direct iteration over set expressions in model code."""

    name = "no-dict-order-dependence"
    summary = "model code must sort before iterating a set expression"
    rationale = (
        "Set iteration order depends on element hashes; for strings it "
        "varies with PYTHONHASHSEED, so a timing model that walks a set "
        "(e.g. ready instructions, touched cache blocks) can produce "
        "different — equally 'correct-looking' — cycle counts per process. "
        "That breaks serial/parallel bit-identity, the skip-ahead "
        "differential suite, and cache soundness at once. Wrap the "
        "iterable in sorted(...) to pin a total order. (Dict iteration is "
        "insertion-ordered in CPython and is not flagged.)"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_model_scope:
            return
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                reason = _set_expr_reason(it)
                if reason is not None:
                    yield ctx.diag(
                        self.name,
                        it,
                        f"iteration over a {reason} has hash-dependent "
                        "order in model code; wrap it in sorted(...)",
                    )
