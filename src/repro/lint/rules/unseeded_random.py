"""``no-unseeded-random``: all randomness flows through ``repro.util.rng``."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import ImportMap, iter_imports
from repro.lint.dataflow import ReachAnalysis, functions_in_modules
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectContext
from repro.lint.registry import (
    RNG_MODULE,
    FileContext,
    Rule,
    is_model_module,
    register,
)

#: module-level functions of :mod:`random` that draw from (or reseed) the
#: *global shared* stream — unacceptable anywhere: the stream's state
#: depends on every draw that preceded it, across the whole process.
GLOBAL_STREAM_FUNCS = frozenset(
    {
        "random",
        "uniform",
        "randint",
        "randrange",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
        "setstate",
    }
)


@register
class NoUnseededRandom(Rule):
    """Forbid the global :mod:`random` stream and unseeded generators."""

    name = "no-unseeded-random"
    summary = (
        "no global/unseeded random: repro.util.rng is the sanctioned source"
    )
    rationale = (
        "Reproducibility requires every stochastic draw to come from a "
        "named, seeded substream (repro.util.rng), so two components never "
        "share a stream by accident and a result is a pure function of its "
        "job. The global `random` stream is process-wide mutable state; an "
        "unseeded Random() seeds from the OS. Model packages may not touch "
        "the random module at all; elsewhere, seeded instances are fine "
        "but the global stream and unseeded construction never are. The "
        "project pass follows the call graph: model code reaching the "
        "global stream through a helper module is flagged at the model-"
        "side call site, unless the path routes through repro.util.rng."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_rng_module:
            return
        imports = ImportMap(ctx.tree)
        if ctx.in_model_scope:
            for node, module, member in iter_imports(ctx.tree):
                if module == "random":
                    what = f"random.{member}" if member else "random"
                    yield ctx.diag(
                        self.name,
                        node,
                        f"model code imports {what!r}; draw from a named "
                        "substream via repro.util.rng instead",
                    )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node.func)
            if resolved is None:
                continue
            module, member = resolved
            if module != "random":
                continue
            if member in GLOBAL_STREAM_FUNCS:
                yield ctx.diag(
                    self.name,
                    node,
                    f"'random.{member}()' draws from the process-global "
                    "stream; use repro.util.rng.substream(...) for a "
                    "named, seeded stream",
                )
            elif member == "Random" and not node.args:
                yield ctx.diag(
                    self.name,
                    node,
                    "unseeded Random() seeds from the OS; pass an explicit "
                    "seed or use repro.util.rng.substream(...)",
                )
            elif member == "SystemRandom":
                yield ctx.diag(
                    self.name,
                    node,
                    "SystemRandom is non-deterministic by construction; "
                    "results would not be reproducible",
                )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        """Cross-file taint: model code reaching unsanctioned randomness.

        Sinks are the process-global stream functions plus SystemRandom;
        seeded ``Random(seed)`` instances outside model scope stay legal,
        so reaching one through a helper is not a finding.  Paths through
        ``repro.util.rng`` are the sanctioned route and terminate the
        taint.  Direct calls are already flagged by the per-file check
        (everywhere, not just model scope), so only transitive paths are
        reported, at the model-side call site.
        """
        graph = project.graph
        sinks = {f"random.{func}" for func in GLOBAL_STREAM_FUNCS}
        sinks.add("random.SystemRandom")
        reach = ReachAnalysis(
            graph, sinks, blocked=functions_in_modules(project, (RNG_MODULE,))
        )
        for fn in project.iter_functions():
            if not is_model_module(fn.module):
                continue
            hop = reach.first_hop(fn.qualname)
            if hop is None:
                continue
            witness = reach.witness(fn.qualname)
            if len(witness) <= 2:
                continue  # direct call: per-file finding already fired
            callee = project.functions.get(hop.callee)
            if callee is not None and is_model_module(callee.module):
                continue
            yield Diagnostic(
                rule=self.name,
                path=hop.path,
                line=hop.lineno,
                col=getattr(hop.node, "col_offset", 0),
                message=(
                    f"model code reaches '{witness[-1]}' transitively: "
                    f"{reach.path_string(fn.qualname)}; route the draw "
                    "through repro.util.rng.substream(...)"
                ),
            )
