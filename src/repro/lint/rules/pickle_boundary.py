"""``pickle-boundary``: attrs dropped by ``__getstate__`` need a rebuild path."""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.astutil import class_methods
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import FileContext, Rule, register


def _dropped_keys(getstate: ast.FunctionDef) -> List[Tuple[str, ast.AST, bool]]:
    """Attribute keys the method blanks or removes from the state dict.

    Returns ``(key, node, removed)`` — ``removed`` is True for ``del``/
    ``.pop`` (the attr will not exist after unpickling) and False for
    ``state[k] = None`` blanking (the attr survives, empty).
    """
    dropped: List[Tuple[str, ast.AST, bool]] = []
    for node in ast.walk(getstate):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is None
                ):
                    dropped.append((target.slice.value, node, False))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    dropped.append((target.slice.value, node, True))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            dropped.append((node.args[0].value, node, True))
    return dropped


def _member_names(cls: ast.ClassDef) -> Set[str]:
    """Names defined in the class body (methods, properties, assignments)."""
    names: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
    return names


@register
class PickleBoundary(Rule):
    """Guard the ``Trace.decoded`` lean-pickle pattern."""

    name = "pickle-boundary"
    summary = "__getstate__-dropped attrs need a lazy rebuild member"
    rationale = (
        "Objects cross the process-pool boundary by pickle; __getstate__ "
        "legitimately drops derived caches to keep payloads lean (the "
        "Trace._decoded column-major view). But a dropped attr with no "
        "rebuild path resurfaces as None/AttributeError only *inside a "
        "worker process*, where the traceback is captured, retried three "
        "times and finally reported as a JobFailure — the hardest-to-debug "
        "failure mode in the engine. Dropping '_x' therefore requires a "
        "lazy accessor 'x' (or explicit __setstate__ handling) on the "
        "same class."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = class_methods(node)
            getstate = methods.get("__getstate__")
            if getstate is None:
                continue
            members = _member_names(node)
            has_setstate = "__setstate__" in members
            for key, site, removed in _dropped_keys(getstate):
                rebuild = key.lstrip("_")
                if rebuild in members and rebuild != key:
                    continue
                yield ctx.diag(
                    self.name,
                    site,
                    f"__getstate__ of {node.name} drops {key!r} with no "
                    f"lazy rebuild member {rebuild!r}; unpickled objects "
                    "would break only inside worker processes",
                )
            for key, site, removed in _dropped_keys(getstate):
                if removed and not has_setstate:
                    yield ctx.diag(
                        self.name,
                        site,
                        f"__getstate__ of {node.name} removes {key!r} but "
                        "defines no __setstate__; the attribute will not "
                        "exist on unpickled instances",
                    )
