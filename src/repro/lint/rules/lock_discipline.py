"""``lock-discipline``: designated-lock classes stay inside their locks."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.concurrency import (
    collect_attr_writes,
    contextmanager_methods,
    iter_locked_nodes,
    lock_attrs,
    self_param_name,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ClassInfo, ProjectContext
from repro.lint.registry import Rule, register

#: raw file mutations that must happen under the class's lock: these are
#: the O_APPEND/compaction primitives whose interleaving the flock exists
#: to serialise.
RAW_WRITE_OPS = frozenset(
    {
        "os.write",
        "os.pwrite",
        "os.ftruncate",
        "os.truncate",
        "os.fsync",
        "os.fdatasync",
    }
)


@register
class LockDiscipline(Rule):
    """Audit classes that designate a lock for writes outside it."""

    name = "lock-discipline"
    summary = (
        "classes with a designated lock must write files and guarded "
        "state inside it"
    )
    rationale = (
        "The ResultStore's crash-consistency proof assumes every file "
        "mutation happens under the advisory flock and every guarded "
        "in-memory structure under its threading.Lock; one bypass write "
        "can interleave bytes mid-record or tear the in-memory view, and "
        "the corruption only surfaces as CRC failures many runs later. "
        "The rule audits any class that designates a lock (a Lock-typed "
        "attribute or a @contextmanager lock method): raw os-level file "
        "writes, and mutations of attributes written under the lock "
        "elsewhere, must be inside the lock scope — either lexically, or "
        "in a helper called only from lock scopes (the _heal_tail "
        "pattern)."
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        for cls in project.classes.values():
            locks = lock_attrs(project, cls)
            cms = contextmanager_methods(cls)
            if not locks and not cms:
                continue  # no designated lock: out of scope
            yield from self._check_class(project, cls, locks, cms)

    def _check_class(
        self,
        project: ProjectContext,
        cls: ClassInfo,
        locks: Set[str],
        cms: Set[str],
    ) -> Iterator[Diagnostic]:
        # Per method: unlocked raw-write sites, and self-call sites with
        # their lock state (for the called-only-under-lock exemption).
        raw_unlocked: Dict[str, List[ast.Call]] = {}
        callers: Dict[str, List[Tuple[str, bool]]] = {}
        for name, method in cls.methods.items():
            self_name = self_param_name(method.node)
            if self_name is None:
                continue
            out_sites = {
                id(site.node): site.callee
                for site in project.graph.out_edges.get(method.qualname, ())
            }
            for node, locked in iter_locked_nodes(
                method.node, self_name, locks, cms
            ):
                if not isinstance(node, ast.Call):
                    continue
                callee = out_sites.get(id(node))
                if callee in RAW_WRITE_OPS and not locked:
                    raw_unlocked.setdefault(name, []).append(node)
                if (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == self_name
                    and node.func.attr in cls.methods
                ):
                    callers.setdefault(node.func.attr, []).append(
                        (name, locked)
                    )

        def called_only_under_lock(method_name: str) -> bool:
            sites = callers.get(method_name, [])
            return bool(sites) and all(locked for _, locked in sites)

        def ctor_or_locked_callers(method_name: str) -> bool:
            sites = callers.get(method_name, [])
            return bool(sites) and all(
                locked or caller == "__init__" for caller, locked in sites
            )

        for name, nodes in raw_unlocked.items():
            if name == "__init__" or called_only_under_lock(name):
                continue
            for node in nodes:
                yield self._diag(
                    cls, node,
                    f"raw file write in {cls.node.name}.{name} outside "
                    "the designated lock scope; wrap it in the lock (or "
                    "call this helper only from locked regions)",
                )

        # Guarded attributes: written under the lock somewhere, so an
        # unlocked write elsewhere bypasses the protocol.
        writes = collect_attr_writes(project, cls)
        guarded = {w.attr for w in writes if w.locked}
        for write in writes:
            if write.locked or write.attr not in guarded:
                continue
            method_name = write.method.rsplit(".", 1)[-1]
            if ctor_or_locked_callers(method_name):
                continue
            yield self._diag(
                cls, write.node,
                f"'{cls.node.name}.{write.attr}' is written under the "
                f"designated lock elsewhere but mutated without it in "
                f"{method_name}()",
            )

    def _diag(
        self, cls: ClassInfo, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.name,
            path=cls.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
