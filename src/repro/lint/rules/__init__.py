"""Rule modules; importing this package registers every rule.

Each module defines one rule class decorated with
:func:`repro.lint.registry.register`.  Add a new rule by dropping a module
here, importing it below, and documenting it in
``docs/static-analysis.md`` (the test suite cross-checks that every
registered rule has a doc entry and a failing fixture).
"""

from repro.lint.rules import (  # noqa: F401  (side effect: registration)
    await_discarded,
    blocking_async,
    cache_key,
    cross_thread,
    dict_order,
    duplicate_def,
    frozen_config,
    lock_discipline,
    mutable_default,
    pickle_boundary,
    swallowed_oserror,
    unseeded_random,
    untyped_stats,
    wallclock,
)

__all__ = [
    "await_discarded",
    "blocking_async",
    "cache_key",
    "cross_thread",
    "dict_order",
    "duplicate_def",
    "frozen_config",
    "lock_discipline",
    "mutable_default",
    "pickle_boundary",
    "swallowed_oserror",
    "unseeded_random",
    "untyped_stats",
    "wallclock",
]
