"""``blocking-in-async``: coroutines must not reach blocking calls."""

from __future__ import annotations

from typing import Iterator, Set

from repro.lint.dataflow import ReachAnalysis, async_functions, display_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectContext
from repro.lint.registry import Rule, register

#: external operations that block the calling thread.  ``time.sleep`` and
#: the file/subprocess/socket ops stall the event loop outright;
#: ``Executor.shutdown`` joins worker threads (unbounded wait).
BLOCKING_SINKS = frozenset(
    {
        "time.sleep",
        "open",
        "os.open",
        "os.read",
        "os.write",
        "os.fsync",
        "os.fdatasync",
        "os.ftruncate",
        "os.truncate",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.mkdir",
        "os.makedirs",
        "os.listdir",
        "os.stat",
        "fcntl.flock",
        "fcntl.lockf",
        "pathlib.Path.write_text",
        "pathlib.Path.write_bytes",
        "pathlib.Path.read_text",
        "pathlib.Path.read_bytes",
        "pathlib.Path.mkdir",
        "pathlib.Path.unlink",
        "pathlib.Path.touch",
        "pathlib.Path.rename",
        "pathlib.Path.replace",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "concurrent.futures.ThreadPoolExecutor.shutdown",
        "concurrent.futures.ProcessPoolExecutor.shutdown",
    }
)

#: project methods that are whole-simulation entry points: calling one
#: synchronously from a coroutine runs an entire batch on the loop.
PROJECT_SINK_SUFFIXES = (".SimEngine.run", ".SimEngine.run_many")


@register
class BlockingInAsync(Rule):
    """Flag ``async def`` bodies that transitively reach blocking calls."""

    name = "blocking-in-async"
    summary = (
        "async code must not reach blocking calls (sleep, file I/O, "
        "engine runs) on the event loop"
    )
    rationale = (
        "The service multiplexes every tenant on one event loop; a "
        "blocking call anywhere in a coroutine's synchronous call chain "
        "stalls admission, batching, and health checks for all of them at "
        "once — and a stalled batcher distorts the latency stats the "
        "scheduling experiments rely on. Blocking work belongs behind "
        "run_in_executor/asyncio.to_thread (the batcher's own pattern); "
        "callables handed to those APIs are recognised and exempt, as is "
        "object construction (startup wiring, not steady-state)."
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        graph = project.graph
        sinks: Set[str] = set(BLOCKING_SINKS)
        sinks.update(
            qualname
            for qualname in project.functions
            if qualname.endswith(PROJECT_SINK_SUFFIXES)
        )
        coroutines = async_functions(project)
        # Blocking other coroutines makes each offender report once, at
        # its own first synchronous hop, instead of every caller up the
        # await chain re-reporting the same sink.
        sync_reach = ReachAnalysis(graph, sinks, blocked=coroutines)
        for fn in project.iter_functions():
            if not fn.is_async:
                continue
            for site in graph.calls_from(fn.qualname):
                callee = site.callee
                if callee in coroutines:
                    continue  # awaited coroutine: reported on its own
                if callee in sinks:
                    chain = (
                        f"{display_name(fn.qualname, project)} -> {callee}"
                    )
                elif sync_reach.reaches(callee):
                    chain = (
                        f"{display_name(fn.qualname, project)} -> "
                        f"{sync_reach.path_string(callee)}"
                    )
                else:
                    continue
                yield Diagnostic(
                    rule=self.name,
                    path=site.path,
                    line=site.lineno,
                    col=getattr(site.node, "col_offset", 0),
                    message=(
                        f"blocking call reached from async "
                        f"'{fn.short_name}': {chain}; move it off the "
                        "event loop via run_in_executor or "
                        "asyncio.to_thread"
                    ),
                )
