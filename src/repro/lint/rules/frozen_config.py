"""``frozen-config``: configuration and job-spec dataclasses are immutable."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dataclass_decorator, dataclass_is_frozen
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import FileContext, Rule, register

#: modules whose dataclasses *are* cache identity (or feed it): core and
#: cache configs, job specs, fault plans, retry policies, job failures.
#: Every dataclass defined in these modules must be ``frozen=True``.
CONFIG_MODULES = frozenset(
    {
        "repro.uarch.config",
        "repro.uarch.cache",
        "repro.engine.jobs",
        "repro.engine.executors",
        "repro.engine.failures",
        "repro.faults",
    }
)


@register
class FrozenConfig(Rule):
    """Require ``frozen=True`` on dataclasses in config/spec modules."""

    name = "frozen-config"
    summary = "config and job-spec dataclasses must be @dataclass(frozen=True)"
    rationale = (
        "A job's cache key is computed from its fields once; if the object "
        "can be mutated afterwards, the key no longer describes the job "
        "that actually ran and the ResultStore silently serves the wrong "
        "result. Freezing also makes specs hashable (the trace memo keys "
        "on them) and safe to share across threads and worker processes."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module not in CONFIG_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            deco = dataclass_decorator(node)
            if deco is None:
                continue
            if not dataclass_is_frozen(deco):
                yield ctx.diag(
                    self.name,
                    node,
                    f"dataclass {node.name!r} in a config/spec module must "
                    "be declared @dataclass(frozen=True)",
                )
