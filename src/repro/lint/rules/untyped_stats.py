"""``no-untyped-stats``: no string-keyed stat-dict writes in model code."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import FileContext, Rule, register


def _stats_name(node: ast.expr) -> Optional[str]:
    """The terminal identifier of a stats container expression, if the
    expression is a name/attribute whose last component is ``stats`` or
    ends with ``_stats`` (``self.fault_stats``, ``core.stats``, ...)."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    if name == "stats" or name.endswith("_stats"):
        return name
    return None


def _flagged_subscript(node: ast.expr) -> Optional[str]:
    """The stats-container name when ``node`` is a constant-string
    subscript of one (``stats["dropped"]``), else None."""
    if not isinstance(node, ast.Subscript):
        return None
    index = node.slice
    if not (isinstance(index, ast.Constant) and isinstance(index.value, str)):
        return None
    return _stats_name(node.value)


@register
class NoUntypedStats(Rule):
    """Flag string-keyed writes into ``*stats`` containers in model scope."""

    name = "no-untyped-stats"
    summary = (
        "model code must accumulate into typed stats "
        "(dataclass fields / repro.telemetry registry), not string keys"
    )
    rationale = (
        "A free-form Dict[str, object] stat accumulator turns every typo "
        "into a silently fresh key and every consumer into an untyped "
        "guess about what lives under each name — exactly the failure "
        "'Validating Simplified Processor Models' warns reproductions "
        "about. Model code must increment declared, unit-annotated stats: "
        "dataclass fields (RunStats, FaultStats) or a "
        "repro.telemetry.StatRegistry stat, both of which make the name, "
        "type and meaning checkable by mypy and self-describing in "
        "exports."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_model_scope:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                continue
            for target in targets:
                container = _flagged_subscript(target)
                if container is not None:
                    yield ctx.diag(
                        self.name,
                        target,
                        f"string-keyed write into {container!r}; declare a "
                        "typed field or a repro.telemetry registry stat "
                        "instead of a bare dict key",
                    )
