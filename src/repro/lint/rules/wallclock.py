"""``no-wallclock``: timing-model code must not read host clocks."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import ImportMap, iter_imports
from repro.lint.dataflow import ReachAnalysis, functions_in_modules
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectContext
from repro.lint.registry import (
    RNG_MODULE,
    FileContext,
    Rule,
    is_model_module,
    register,
)

#: :mod:`time` members that read (or depend on) the host clock.  ``sleep``
#: is included: a model that sleeps couples simulated behaviour to host
#: scheduling.
TIME_MEMBERS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
        "localtime",
        "gmtime",
        "sleep",
    }
)

#: :mod:`datetime` members that construct "now".
DATETIME_MEMBERS = frozenset({"datetime", "date", "time"})
DATETIME_NOW = frozenset({"now", "utcnow", "today"})


@register
class NoWallclock(Rule):
    """Forbid host-clock reads in model code (``uarch``/``core``/``isa``/
    ``faults``)."""

    name = "no-wallclock"
    summary = "model code must not read host clocks (time.*, datetime.now)"
    rationale = (
        "Simulated time is the integer-picosecond cycle clock; a host-clock "
        "read makes a result depend on when/where it ran, which corrupts "
        "the content-addressed ResultStore (two runs of one cache key "
        "disagree) and breaks the skip-ahead differential guarantee. "
        "Engine code legitimately times jobs for reporting — that is why "
        "this rule is scoped to model packages only. The project pass "
        "extends the check across files: a model function reaching "
        "time.time() through a helper in another module is tainted too, "
        "unless the path routes through the sanctioned repro.util.rng "
        "seeding layer."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_model_scope:
            return
        imports = ImportMap(ctx.tree)
        for node, module, member in iter_imports(ctx.tree):
            if module == "time" and member in TIME_MEMBERS:
                yield ctx.diag(
                    self.name,
                    node,
                    f"model code imports wall-clock 'time.{member}'; "
                    "derive timing from the simulated cycle/ps clock",
                )
            elif module == "datetime" and member in DATETIME_MEMBERS:
                yield ctx.diag(
                    self.name,
                    node,
                    f"model code imports 'datetime.{member}'; simulated "
                    "results must not depend on the calendar clock",
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in DATETIME_NOW
                and isinstance(node.func.value, ast.Attribute)
                and isinstance(node.func.value.value, ast.Name)
                and imports.module_aliases.get(node.func.value.value.id)
                == "datetime"
            ):
                # datetime.datetime.now() / datetime.date.today()
                yield ctx.diag(
                    self.name,
                    node,
                    f"calendar-clock read '...{node.func.attr}()' in model "
                    "code",
                )
                continue
            resolved = imports.resolve_call(node.func)
            if resolved is None:
                continue
            module, member = resolved
            if module == "time" and member in TIME_MEMBERS:
                yield ctx.diag(
                    self.name,
                    node,
                    f"wall-clock read 'time.{member}()' in model code; "
                    "use the simulated clock instead",
                )
            elif module == "datetime" and member in DATETIME_MEMBERS:
                yield ctx.diag(
                    self.name,
                    node,
                    f"'datetime.{member}' used in model code; simulated "
                    "results must not depend on the calendar clock",
                )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        """Cross-file taint: model code reaching a clock through helpers.

        Direct reads (witness of two nodes) are the per-file check's
        territory; only transitive paths are reported here, anchored at
        the model-side call site.  Paths through ``repro.util.rng`` are
        sanctioned — that module is the trust boundary for seed-time
        entropy.  A first hop into another model-scope function is
        skipped: that callee earns its own (shorter-path) finding.
        """
        graph = project.graph
        sinks = {f"time.{member}" for member in TIME_MEMBERS}
        reach = ReachAnalysis(
            graph, sinks, blocked=functions_in_modules(project, (RNG_MODULE,))
        )
        for fn in project.iter_functions():
            if not is_model_module(fn.module):
                continue
            hop = reach.first_hop(fn.qualname)
            if hop is None:
                continue
            witness = reach.witness(fn.qualname)
            if len(witness) <= 2:
                continue  # direct call: per-file finding already fired
            callee = project.functions.get(hop.callee)
            if callee is not None and is_model_module(callee.module):
                continue
            yield Diagnostic(
                rule=self.name,
                path=hop.path,
                line=hop.lineno,
                col=getattr(hop.node, "col_offset", 0),
                message=(
                    f"model code reaches wall-clock '{witness[-1]}' "
                    f"transitively: {reach.path_string(fn.qualname)}; "
                    "derive timing from the simulated cycle/ps clock"
                ),
            )
