"""Small AST helpers shared by the rules.

The rules never need full name resolution — just enough import tracking to
answer "does this call reach module ``m``'s attribute ``a``?" under the
aliasing forms that actually occur (``import m``, ``import m as x``,
``from m import a``, ``from m import a as y``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple


class ImportMap:
    """Module-level import aliases for one file.

    ``module_aliases`` maps a local name to the module it is bound to
    (``import random as rnd`` -> ``{"rnd": "random"}``).
    ``member_aliases`` maps a local name to ``(module, member)``
    (``from random import Random as R`` -> ``{"R": ("random", "Random")}``).
    """

    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: Dict[str, str] = {}
        self.member_aliases: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.member_aliases[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def resolve_call(self, func: ast.expr) -> Optional[Tuple[str, str]]:
        """Resolve a call's func to ``(module, member)`` when it is a
        one-level access through a tracked import, else ``None``."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = self.module_aliases.get(func.value.id)
            if module is not None:
                return module, func.attr
            return None
        if isinstance(func, ast.Name):
            return self.member_aliases.get(func.id)
        return None


def iter_imports(
    tree: ast.Module,
) -> Iterator[Tuple[ast.stmt, str, Optional[str]]]:
    """Yield ``(node, module, member)`` for every import binding.

    ``member`` is ``None`` for plain ``import module`` forms.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name, None
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                yield node, node.module, alias.name


def decorator_parts(node: ast.expr) -> Tuple[str, ...]:
    """Dotted-name parts of a decorator expression (``Call`` unwrapped).

    ``@dataclasses.dataclass(frozen=True)`` -> ``("dataclasses",
    "dataclass")``; unresolvable shapes return ``()``.
    """
    if isinstance(node, ast.Call):
        node = node.func
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def dataclass_decorator(cls: ast.ClassDef) -> Optional[ast.expr]:
    """The ``@dataclass`` decorator of a class, if it has one."""
    for deco in cls.decorator_list:
        if decorator_parts(deco)[-1:] == ("dataclass",):
            return deco
    return None


def dataclass_is_frozen(deco: ast.expr) -> bool:
    """Whether a ``@dataclass`` decorator passes ``frozen=True``."""
    if not isinstance(deco, ast.Call):
        return False
    for kw in deco.keywords:
        if kw.arg == "frozen":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def dataclass_fields(cls: ast.ClassDef) -> Iterator[Tuple[str, ast.AnnAssign]]:
    """The dataclass fields of a class body: annotated assignments whose
    annotation is not ``ClassVar`` (bare ``name = value`` class attrs are
    not fields)."""
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        ann = stmt.annotation
        if isinstance(ann, ast.Subscript):
            ann = ann.value
        if decorator_parts(ann)[-1:] == ("ClassVar",):
            continue
        yield stmt.target.id, stmt


def self_attribute_reads(node: ast.AST) -> Iterator[str]:
    """Names read as ``self.<name>`` anywhere under ``node``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            yield sub.attr


def class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Function definitions in a class body, by name."""
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
