"""Whole-program analysis context: symbol table + module index.

The per-file rules see one AST at a time (:class:`~repro.lint.registry.
FileContext`); cross-file hazards — a blocking call reached *transitively*
from an ``async def``, a wall-clock read laundered through a helper module
— need a view of the whole linted tree.  :class:`ProjectContext` is that
view: every parsed module, every function and class indexed by dotted
qualname, instance-attribute and local-variable types inferred where a
constructor call or annotation makes them knowable, and the
:class:`~repro.lint.callgraph.CallGraph` built on top.

Resolution is deliberately *best-effort* (documented in
``docs/static-analysis.md``): the import forms that actually occur,
``self.method()`` dispatch within a class, and attribute/parameter types
that come from a direct ``Name(...)`` constructor call or an annotation.
A call the resolver cannot attribute is simply absent from the graph —
project rules under-approximate rather than guess, so a finding is always
anchored on an evidenced call path.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.lint.astutil import ImportMap

if TYPE_CHECKING:  # runtime import would be circular (callgraph -> project)
    from repro.lint.callgraph import CallGraph

#: modules whose classes we track well enough to resolve method calls on
#: typed values (``self._pool.shutdown()`` with ``self._pool =
#: ThreadPoolExecutor(...)``).  Maps local class name -> canonical dotted
#: class path used in call-graph node ids.
EXTERNAL_CLASSES = {
    ("concurrent.futures", "ThreadPoolExecutor"):
        "concurrent.futures.ThreadPoolExecutor",
    ("concurrent.futures", "ProcessPoolExecutor"):
        "concurrent.futures.ProcessPoolExecutor",
    ("pathlib", "Path"): "pathlib.Path",
    ("threading", "Lock"): "threading.Lock",
    ("threading", "RLock"): "threading.RLock",
    ("threading", "Thread"): "threading.Thread",
}


class FunctionInfo:
    """One function or method definition in the project."""

    __slots__ = (
        "qualname", "module", "path", "node", "class_name", "is_async",
    )

    def __init__(
        self,
        qualname: str,
        module: str,
        path: str,
        node: ast.AST,
        class_name: Optional[str],
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.path = path
        self.node = node
        #: qualname of the owning class for methods, None for functions
        self.class_name = class_name
        self.is_async = isinstance(node, ast.AsyncFunctionDef)

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    @property
    def short_name(self) -> str:
        """The trailing ``Class.method`` / ``function`` part (messages)."""
        parts = self.qualname.split(".")
        return ".".join(parts[-2:]) if self.class_name else parts[-1]

    def __repr__(self) -> str:
        return f"<FunctionInfo {self.qualname}>"


class ClassInfo:
    """One class definition: methods, bases, and inferred attribute types."""

    __slots__ = ("qualname", "module", "path", "node", "methods",
                 "base_names", "attr_types")

    def __init__(
        self, qualname: str, module: str, path: str, node: ast.ClassDef
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.path = path
        self.node = node
        #: method name -> FunctionInfo
        self.methods: Dict[str, FunctionInfo] = {}
        #: base-class expressions as dotted strings (resolved lazily)
        self.base_names: List[str] = []
        #: instance attribute -> class qualname (project or EXTERNAL_CLASSES
        #: value), inferred from ``self.x = ClassName(...)`` / ``self.x =
        #: <param annotated ClassName>`` / ``self.x: ClassName`` sites
        self.attr_types: Dict[str, str] = {}

    def __repr__(self) -> str:
        return f"<ClassInfo {self.qualname}>"


class ModuleInfo:
    """One parsed file: names, imports, definitions."""

    __slots__ = ("module", "path", "source", "tree", "imports",
                 "functions", "classes")

    def __init__(
        self, module: str, path: str, source: str, tree: ast.Module
    ) -> None:
        self.module = module
        self.path = path
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        #: top-level function name -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: top-level class name -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}

    def __repr__(self) -> str:
        return f"<ModuleInfo {self.module} ({self.path})>"


class ProjectContext:
    """Everything project rules know about the linted tree as a whole.

    ``modules`` is keyed by *path* (test trees produce colliding stem
    names — two ``conftest`` modules — and a path never collides);
    ``modules_by_name`` resolves dotted imports and returns ``None`` on
    ambiguity, so cross-file resolution never guesses between same-named
    files.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self._by_name: Dict[str, List[ModuleInfo]] = {}
        #: function qualname -> FunctionInfo (methods included)
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qualname -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: seconds spent building the context + call graph (``--stats``)
        self.build_seconds: float = 0.0
        self._graph: Optional["CallGraph"] = None

    @property
    def graph(self) -> "CallGraph":
        """The call graph over this project, built on first access."""
        if self._graph is None:
            from repro.lint.callgraph import CallGraph

            self._graph = CallGraph(self)
        return self._graph

    # ------------------------------------------------------------- lookup

    def module_by_name(self, name: str) -> Optional[ModuleInfo]:
        """The unique module with dotted name ``name``, else ``None``."""
        mods = self._by_name.get(name)
        return mods[0] if mods is not None and len(mods) == 1 else None

    def resolve_name(
        self, module: ModuleInfo, name: str
    ) -> Optional[str]:
        """Resolve a bare name in ``module`` to a project/external symbol.

        Returns a dotted path — a project function/class qualname, an
        external ``module.member`` string, or ``None`` for locals and
        unknown names.
        """
        if name in module.functions:
            return module.functions[name].qualname
        if name in module.classes:
            return module.classes[name].qualname
        member = module.imports.member_aliases.get(name)
        if member is not None:
            src_mod, src_name = member
            target = self.module_by_name(src_mod)
            if target is not None:
                resolved = self.resolve_name(target, src_name)
                if resolved is not None:
                    return resolved
            return f"{src_mod}.{src_name}"
        return None

    def class_for(self, dotted: str) -> Optional[ClassInfo]:
        """The project class at ``dotted``, if any."""
        return self.classes.get(dotted)

    def method_of(self, class_qualname: str, name: str) -> Optional[str]:
        """Resolve ``name`` as a method of a class (bases included)."""
        seen = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name].qualname
            queue.extend(cls.base_names)
        return None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every indexed function and method, in indexing order."""
        yield from self.functions.values()

    # ----------------------------------------------------------- building

    def add_module(self, info: ModuleInfo) -> None:
        """Index one parsed module (``build_project``'s door)."""
        self.modules[info.path] = info
        self._by_name.setdefault(info.module, []).append(info)


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chains as a dotted string, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_class(
    project: ProjectContext, module: ModuleInfo, ann: Optional[ast.expr]
) -> Optional[str]:
    """Resolve an annotation expression to a class qualname if knowable.

    ``Optional[X]``/``"X"`` string forms unwrap; subscripted containers
    (``List[X]``) do not type the annotated name itself.
    """
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.Subscript):
        head = _dotted(ann.value)
        if head is None or head.split(".")[-1] != "Optional":
            return None
        ann = ann.slice
    name = _dotted(ann)
    if name is None:
        return None
    return _resolve_class_path(project, module, name)


def _resolve_class_path(
    project: ProjectContext, module: ModuleInfo, dotted: str
) -> Optional[str]:
    """Resolve a (possibly aliased) dotted class reference in ``module``."""
    head, _, rest = dotted.partition(".")
    if not rest:
        resolved = project.resolve_name(module, head)
        if resolved is not None:
            if resolved in project.classes:
                return resolved
            parts = tuple(resolved.rsplit(".", 1))
            if len(parts) == 2 and parts in EXTERNAL_CLASSES:
                return EXTERNAL_CLASSES[parts]
        return None
    src_mod = module.imports.module_aliases.get(head)
    if src_mod is None:
        return None
    target = project.module_by_name(src_mod)
    if target is not None and rest in target.classes:
        return target.classes[rest].qualname
    if (src_mod, rest) in EXTERNAL_CLASSES:
        return EXTERNAL_CLASSES[(src_mod, rest)]
    return None


def _index_module(info: ModuleInfo) -> None:
    """Populate a module's function/class tables (pass 1)."""
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{info.module}.{stmt.name}"
            info.functions[stmt.name] = FunctionInfo(
                qual, info.module, info.path, stmt, None
            )
        elif isinstance(stmt, ast.ClassDef):
            qual = f"{info.module}.{stmt.name}"
            cls = ClassInfo(qual, info.module, info.path, stmt)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[sub.name] = FunctionInfo(
                        f"{qual}.{sub.name}", info.module, info.path,
                        sub, qual,
                    )
            info.classes[stmt.name] = cls


def _link_classes(project: ProjectContext, info: ModuleInfo) -> None:
    """Resolve base classes and infer instance-attribute types (pass 2)."""
    for cls in info.classes.values():
        for base in cls.node.bases:
            dotted = _dotted(base)
            if dotted is None:
                continue
            resolved = _resolve_class_path(project, info, dotted)
            if resolved is not None:
                cls.base_names.append(resolved)
        for method in cls.methods.values():
            _infer_attr_types(project, info, cls, method)


def _param_types(
    project: ProjectContext, module: ModuleInfo, fn: ast.AST
) -> Dict[str, str]:
    """Annotated-parameter types of a function (class qualnames only)."""
    out: Dict[str, str] = {}
    args = getattr(fn, "args", None)
    if args is None:
        return out
    for arg in list(args.posonlyargs) + list(args.args) + list(
        args.kwonlyargs
    ):
        resolved = _annotation_class(project, module, arg.annotation)
        if resolved is not None:
            out[arg.arg] = resolved
    return out


def local_types(
    project: ProjectContext,
    module: ModuleInfo,
    fn: ast.AST,
    cls: Optional[ClassInfo] = None,
) -> Dict[str, str]:
    """Best-effort local-variable types within one function body.

    Sources, in increasing precedence by statement order: annotated
    parameters, ``x: C = ...`` annotated assignments, and ``x = C(...)``
    direct constructor calls.  ``self`` maps to the owning class.
    """
    out = _param_types(project, module, fn)
    if cls is not None:
        args = getattr(fn, "args", None)
        if args is not None and args.args:
            out[args.args[0].arg] = cls.qualname
    for node in ast.walk(fn):
        target: Optional[str] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
            isinstance(node.targets[0], ast.Name)
        ):
            target, value = node.targets[0].id, node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            ann_cls = _annotation_class(project, module, node.annotation)
            if ann_cls is not None:
                out[node.target.id] = ann_cls
            target, value = node.target.id, node.value
        if target is None or value is None:
            continue
        ctor = _constructed_class(project, module, value)
        if ctor is not None:
            out[target] = ctor
    return out


def _constructed_class(
    project: ProjectContext, module: ModuleInfo, value: ast.expr
) -> Optional[str]:
    """The class qualname a ``C(...)`` call constructs, if resolvable."""
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    if dotted is None:
        return None
    return _resolve_class_path(project, module, dotted)


def _infer_attr_types(
    project: ProjectContext,
    module: ModuleInfo,
    cls: ClassInfo,
    method: FunctionInfo,
) -> None:
    """Record ``self.x`` attribute types evidenced inside one method."""
    args = getattr(method.node, "args", None)
    if args is None or not args.args:
        return
    self_name = args.args[0].arg
    params = _param_types(project, module, method.node)
    for node in ast.walk(method.node):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        annotation: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, (
                node.annotation
            )
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == self_name
        ):
            continue
        attr = target.attr
        resolved: Optional[str] = None
        if annotation is not None:
            resolved = _annotation_class(project, module, annotation)
        if resolved is None and value is not None:
            resolved = _constructed_class(project, module, value)
        if resolved is None and isinstance(value, ast.Name):
            resolved = params.get(value.id)
        if resolved is not None:
            cls.attr_types.setdefault(attr, resolved)


def build_project(
    files: List[Tuple[str, str, ast.Module, str]],
) -> ProjectContext:
    """Build a :class:`ProjectContext` from parsed files.

    ``files`` holds ``(path, source, tree, module)`` tuples — the runner
    parses once and shares the trees between the per-file and project
    passes.
    """
    project = ProjectContext()
    for path, source, tree, module in files:
        info = ModuleInfo(module, path, source, tree)
        _index_module(info)
        project.add_module(info)
    # Same-stem files outside the repro package (two ``conftest.py``s) get
    # path-qualified qualnames, so distinct functions never merge into one
    # call-graph node.
    for name, mods in project._by_name.items():
        if len(mods) == 1:
            continue
        for info in mods:
            for fn_name, fn in info.functions.items():
                fn.qualname = f"{info.path}:{fn_name}"
            for cls in info.classes.values():
                cls.qualname = f"{info.path}:{cls.node.name}"
                for mname, method in cls.methods.items():
                    method.qualname = f"{cls.qualname}.{mname}"
                    method.class_name = cls.qualname
    for info in project.modules.values():
        for fn in info.functions.values():
            project.functions[fn.qualname] = fn
        for cls in info.classes.values():
            project.classes[cls.qualname] = cls
            for method in cls.methods.values():
                project.functions[method.qualname] = method
    for info in project.modules.values():
        _link_classes(project, info)
    return project
