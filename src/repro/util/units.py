"""Time units.

All simulator timestamps are integer picoseconds.  The paper's co-simulation
handshake advances in 0.01 ns (= 10 ps) base units; integer picoseconds give
us the same resolution with exact arithmetic and no drift between clock
domains of different periods.
"""

PS_PER_NS = 1000
NS = PS_PER_NS  # convenience alias: ``3 * NS`` reads as 3 nanoseconds in ps


def ns_to_ps(ns: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded to nearest)."""
    if ns < 0:
        raise ValueError("time must be non-negative")
    return int(round(ns * PS_PER_NS))


def ps_to_ns(ps: int) -> float:
    """Convert integer picoseconds back to (float) nanoseconds."""
    return ps / PS_PER_NS
