"""Shared utilities: statistics, deterministic RNG streams, units, tables.

These helpers are deliberately dependency-free so every other subpackage can
import them without pulling in simulation machinery.
"""

from repro.util.rng import SeedSequence, substream
from repro.util.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    percent_change,
    speedup,
    weighted_harmonic_mean,
)
from repro.util.sparkline import labelled_sparkline, sparkline
from repro.util.tables import format_series, format_table
from repro.util.units import NS, PS_PER_NS, ns_to_ps, ps_to_ns

__all__ = [
    "NS",
    "PS_PER_NS",
    "SeedSequence",
    "arithmetic_mean",
    "format_series",
    "format_table",
    "geometric_mean",
    "harmonic_mean",
    "labelled_sparkline",
    "ns_to_ps",
    "percent_change",
    "ps_to_ns",
    "sparkline",
    "speedup",
    "substream",
    "weighted_harmonic_mean",
]
