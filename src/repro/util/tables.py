"""Plain-text rendering for experiment tables and series.

The experiment harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and diff-friendly.
"""

from typing import Optional, Sequence


def _cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are rendered with three decimals; every column is right-aligned to
    its widest entry.
    """
    rendered_rows = [
        [f"{c:.3f}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
    widths = [
        max(len(h), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], unit: str = ""
) -> str:
    """Render one figure series as ``name: x=y`` pairs on a single line."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    suffix = unit and f" {unit}"
    points = ", ".join(f"{x}={y:.3f}{suffix}" for x, y in zip(xs, ys))
    return f"{name}: {points}"
