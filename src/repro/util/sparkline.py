"""Unicode sparklines for terminal figure rendering.

The experiment harness prints figures as numeric series; a sparkline gives
the shape at a glance (the decay of Figure 1, the erosion of Figure 8)
without any plotting dependency.
"""

from typing import Sequence

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render values as a fixed-height unicode bar string.

    An empty input returns an empty string; a constant series renders at
    mid-height.
    """
    items = [float(v) for v in values]
    if not items:
        return ""
    lo = min(items)
    hi = max(items)
    if hi == lo:
        return _BARS[3] * len(items)
    span = hi - lo
    out = []
    for v in items:
        index = int((v - lo) / span * (len(_BARS) - 1))
        out.append(_BARS[index])
    return "".join(out)


def labelled_sparkline(
    name: str, values: Sequence[float], width: int = 10
) -> str:
    """``name [spark] min..max`` one-liner."""
    items = [float(v) for v in values]
    if not items:
        return f"{name.ljust(width)} (empty)"
    return (
        f"{name.ljust(width)} {sparkline(items)} "
        f"{min(items):.2f}..{max(items):.2f}"
    )
