"""Summary statistics used by the figures of merit and the experiments.

The paper reports performance as IPT (instructions per time unit) and
aggregates it with arithmetic and harmonic means (Section 6.1); the
contention-weighted harmonic mean divides each benchmark's IPT by the number
of benchmarks sharing its preferred core before taking the harmonic mean.
"""

import math
from typing import Iterable, Sequence


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average. Raises ValueError on an empty input."""
    items = list(values)
    if not items:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(items) / len(items)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; the paper's figure of merit for total execution time.

    All values must be strictly positive — a zero IPT would mean an infinite
    run time, which the simulator never produces.
    """
    items = list(values)
    if not items:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("harmonic_mean requires strictly positive values")
    return len(items) / sum(1.0 / v for v in items)


def weighted_harmonic_mean(
    values: Sequence[float], weights: Sequence[float]
) -> float:
    """Harmonic mean with importance weights (Section 6.1).

    Weights model the relative submission frequency of each workload type.
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    if not values:
        raise ValueError("weighted_harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("weighted_harmonic_mean requires positive values")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total_weight = sum(weights)
    if total_weight == 0:
        raise ValueError("at least one weight must be positive")
    return total_weight / sum(w / v for v, w in zip(values, weights))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; used for summarising speedup ratios."""
    items = list(values)
    if not items:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def speedup(new: float, baseline: float) -> float:
    """Ratio of a new performance number to a baseline (both IPT-like)."""
    if baseline <= 0:
        raise ValueError("baseline must be strictly positive")
    return new / baseline


def percent_change(new: float, baseline: float) -> float:
    """Percentage improvement of ``new`` over ``baseline`` (15.0 == +15%)."""
    return (speedup(new, baseline) - 1.0) * 100.0
