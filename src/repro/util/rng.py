"""Deterministic random-number substreams.

Every stochastic component (trace generation, annealing moves, ...) draws from
a named substream derived from a root seed, so experiments are reproducible
and two components never share a stream by accident.
"""

import hashlib
import random
from random import Random
from typing import Union

__all__ = ["Random", "SeedSequence", "substream"]

_SeedLike = Union[int, str]


def _hash_to_int(*parts: _SeedLike) -> int:
    digest = hashlib.sha256("/".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def substream(root_seed: _SeedLike, *names: _SeedLike) -> random.Random:
    """Return an independent ``random.Random`` for the named substream."""
    return random.Random(_hash_to_int(root_seed, *names))


class SeedSequence:
    """A root seed that can spawn named, independent substreams.

    >>> ss = SeedSequence(42)
    >>> a = ss.stream("trace", "gcc")
    >>> b = ss.stream("trace", "gcc")
    >>> a.random() == b.random()   # same name -> same stream
    True
    """

    def __init__(self, root_seed: _SeedLike = 0) -> None:
        self.root_seed = root_seed

    def stream(self, *names: _SeedLike) -> random.Random:
        """Spawn the substream identified by ``names``."""
        return substream(self.root_seed, *names)

    def derive(self, *names: _SeedLike) -> int:
        """Derive a plain integer seed for the named substream."""
        return _hash_to_int(self.root_seed, *names)

    def __repr__(self) -> str:
        return f"SeedSequence(root_seed={self.root_seed!r})"
