"""JSONL metrics snapshots: one self-describing record per run.

A metrics snapshot is the :meth:`~repro.telemetry.registry.StatRegistry.
describe` form — ``{name: {kind, unit, doc, value}}`` — wrapped with
caller-supplied metadata (benchmark, configs, seed, ...), serialised as
one JSON line.  Snapshots append cleanly to JSONL files, including the
engine :class:`~repro.engine.store.ResultStore` metrics sidecar
(``ResultStore.append_metrics``), and are diffed field-by-field by the
golden-fixture tests rather than byte-wise.
"""

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.telemetry.registry import StatRegistry

#: schema tag embedded in every snapshot record
METRICS_SCHEMA = 1


def metrics_snapshot(
    registry: StatRegistry,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One JSON-ready metrics record: metadata + described stats."""
    return {
        "schema": METRICS_SCHEMA,
        "meta": dict(meta or {}),
        "stats": registry.describe(),
    }


def write_metrics_jsonl(
    path: Union[str, Path],
    snapshots: Iterable[Dict[str, object]],
) -> Path:
    """Write snapshot records (one JSON object per line) to ``path``."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in snapshots
    ]
    out.write_text("\n".join(lines) + ("\n" if lines else ""),
                   encoding="utf-8")
    return out
