"""``repro.telemetry`` — typed metrics, event tracing, and exporters.

The paper's central claim is *when* leadership changes hands between
heterogeneous cores; this package is the machine-readable record of it.
Three layers (see ``docs/observability.md``):

* :mod:`~repro.telemetry.registry` — a typed :class:`StatRegistry`
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram` /
  :class:`TimeSeries`, each with a declared unit and docstring) replacing
  free-form stat dicts.  The ``no-untyped-stats`` lint rule keeps
  string-keyed stat dicts out of model code.
* :mod:`~repro.telemetry.tracer` — a :class:`Tracer` recording lead
  changes, GRB transfers, fault events, and skip-ahead jumps with
  simulated (picosecond) timestamps.  A run without a tracer takes none of
  the telemetry paths: the hooks are single ``is not None`` checks, so the
  disabled cost is unmeasurable and results are bit-identical either way
  (pinned by ``tests/differential/test_telemetry.py``).
* exporters — :mod:`~repro.telemetry.chrome` (Chrome ``trace_event`` JSON,
  loadable in Perfetto / ``chrome://tracing`` to *see* contesting),
  :mod:`~repro.telemetry.metrics` (JSONL metrics snapshots, appendable to
  the engine :class:`~repro.engine.store.ResultStore` sidecar), and
  :mod:`~repro.telemetry.manifest` (run manifests: config hash, seed,
  wall time, cache hit/miss — emitted by ``repro-experiments``).

CLI surface: ``repro-sim <bench> --core a --core b --trace out.json
--metrics out.jsonl``.
"""

from repro.telemetry.chrome import chrome_trace, write_chrome_trace
from repro.telemetry.manifest import (
    RunManifest,
    build_manifest,
    config_hash,
    write_manifest,
)
from repro.telemetry.metrics import metrics_snapshot, write_metrics_jsonl
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Stat,
    StatRegistry,
    TimeSeries,
)
from repro.telemetry.tracer import TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "RunManifest",
    "Stat",
    "StatRegistry",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "build_manifest",
    "chrome_trace",
    "config_hash",
    "metrics_snapshot",
    "write_chrome_trace",
    "write_manifest",
    "write_metrics_jsonl",
]
