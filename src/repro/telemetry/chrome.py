"""Chrome ``trace_event`` exporter: load a contest in Perfetto.

Converts a finished :class:`~repro.telemetry.tracer.Tracer` into the
Chrome trace-event JSON object format (``{"traceEvents": [...]}``) that
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly.  The mapping:

* one process (pid 1, named after the run), one thread per core
  (tid = core id, named ``core<N> (<config>)``);
* leadership is rendered as back-to-back ``X`` (complete) slices named
  ``lead`` on the leading core's track, rebuilt from the initial leader
  plus the ``lead_change`` chain and closed at the run-end timestamp —
  the contesting picture of Figures 6-8 at a glance;
* skip-ahead jumps are ``X`` slices named ``skip`` with their simulated
  duration; lead changes, faults, saturations, and re-forks are ``i``
  (instant) events; full-detail GRB transfers are instants on the
  receiving core's track;
* every registry :class:`~repro.telemetry.registry.TimeSeries` (GRB
  receive-FIFO occupancy, ROB occupancy) becomes a ``C`` (counter)
  track.

Timestamps: the tracer records integer simulated picoseconds; Chrome
traces use microseconds, so ``ts = ts_ps / 1e6`` (fractional µs keep
full picosecond precision — the format allows it).
"""

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.telemetry.tracer import TraceEvent, Tracer

#: the single synthetic process id all tracks live under
PID = 1

#: event names rendered as instant ("i") marks on a core's track
_INSTANT_EVENTS = ("lead_change", "fault", "saturated", "resync",
                   "grb_transfer")

JsonEvent = Dict[str, object]


def _us(ts_ps: int) -> float:
    """Picoseconds -> (fractional) microseconds."""
    return ts_ps / 1e6


def _metadata(tracer: Tracer) -> List[JsonEvent]:
    events: List[JsonEvent] = [{
        "name": "process_name", "ph": "M", "pid": PID,
        "args": {"name": "architectural contest"},
    }]
    for core_id in sorted(tracer.core_names):
        name = tracer.core_names[core_id]
        events.append({
            "name": "thread_name", "ph": "M", "pid": PID, "tid": core_id,
            "args": {"name": f"core{core_id} ({name})"},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": PID,
            "tid": core_id, "args": {"sort_index": core_id},
        })
    return events


def _lead_slices(tracer: Tracer) -> List[JsonEvent]:
    """Back-to-back ``lead`` slices from the lead-change chain."""
    changes = [e for e in tracer.events if e.name == "lead_change"]
    if tracer.initial_leader is None and not changes:
        return []
    leader = tracer.initial_leader
    if leader is None:
        leader = int(changes[0].args["from"])  # type: ignore[arg-type]
    start_ps = 0
    end_ps = tracer.end_ts_ps
    if end_ps is None:
        end_ps = changes[-1].ts_ps if changes else 0
    slices: List[JsonEvent] = []

    def close(until_ps: int, holder: int) -> None:
        if until_ps > start_ps:
            slices.append({
                "name": "lead", "ph": "X", "pid": PID, "tid": holder,
                "ts": _us(start_ps), "dur": _us(until_ps - start_ps),
                "args": {"core": holder},
            })

    for change in changes:
        close(change.ts_ps, leader)
        leader = int(change.args["to"])  # type: ignore[arg-type]
        start_ps = change.ts_ps
    close(end_ps, leader)
    return slices


def _event_json(event: TraceEvent) -> Optional[JsonEvent]:
    if event.name == "skip":
        dur_ps = int(event.args["dur_ps"])  # type: ignore[arg-type]
        return {
            "name": "skip", "ph": "X", "pid": PID, "tid": event.core,
            "ts": _us(event.ts_ps), "dur": _us(dur_ps),
            "args": dict(event.args),
        }
    if event.name in _INSTANT_EVENTS:
        return {
            "name": event.name, "ph": "i", "pid": PID, "tid": event.core,
            "ts": _us(event.ts_ps), "s": "t", "args": dict(event.args),
        }
    return None


def _counter_tracks(tracer: Tracer) -> List[JsonEvent]:
    events: List[JsonEvent] = []
    for stat in tracer.registry:
        if stat.kind != "timeseries":
            continue
        value = stat.snapshot_value()
        assert isinstance(value, list)
        for ts_ps, sample in value:
            events.append({
                "name": stat.name, "ph": "C", "pid": PID,
                "ts": _us(ts_ps), "args": {stat.unit or "value": sample},
            })
    return events


def chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """The full Chrome trace-event JSON object for a finished tracer."""
    events: List[JsonEvent] = []
    events.extend(_metadata(tracer))
    events.extend(_lead_slices(tracer))
    for event in tracer.events:
        rendered = _event_json(event)
        if rendered is not None:
            events.append(rendered)
    events.extend(_counter_tracks(tracer))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "cores": {
                str(core_id): {
                    "config": tracer.core_names[core_id],
                    "period_ps": tracer.core_periods.get(core_id, 0),
                }
                for core_id in sorted(tracer.core_names)
            },
            "detail": tracer.detail,
        },
    }


def write_chrome_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(chrome_trace(tracer), indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return out
