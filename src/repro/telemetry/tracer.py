"""The event tracer: lead changes, GRB traffic, faults, skip-ahead jumps.

A :class:`Tracer` is handed to :func:`repro.uarch.run.run_standalone` or
:class:`repro.core.system.ContestingSystem` and records *simulated-time*
events plus a typed :class:`~repro.telemetry.registry.StatRegistry`.  The
hooks in model code are single ``tracer is not None`` checks on paths that
are already per-retirement or rarer, so a run without a tracer pays one
pointer comparison at most — and takes *no* telemetry branch — keeping
results bit-identical with telemetry on or off (differential-tested) and
the disabled overhead below the 2% benchmark gate.

Event stream semantics (every event carries ``ts_ps``, simulated
picoseconds):

``lead_change``
    Leadership moved between cores (``from_core`` -> ``to_core`` at
    retirement ``seq``).  The count always equals
    ``ContestResult.lead_changes`` and
    :func:`repro.analysis.switching.lead_changes_from_events` re-derives
    it from the stream (parity is property-tested).
``skip``
    An event-driven skip-ahead jump: ``from_cycle`` -> ``to_cycle`` on
    one core, ``dur_ps`` of wall-simulated time skipped.
``fault`` / ``saturated`` / ``resync``
    Fault injections, saturated-lagger removals, and re-forks.
``grb_transfer``
    One GRB result hop (only recorded as individual events under
    ``detail="full"``; the default ``"sampled"`` mode counts every
    transfer in the registry and samples receive-FIFO occupancy every
    ``sample_every`` transfers per sender->receiver link, which keeps
    exports small while the occupancy tracks still visualise traffic).

GRB transfer ``fate`` uses the :mod:`repro.faults` ``XFER_*`` codes
(0 = delivered intact).
"""

from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import OpClass
from repro.telemetry.registry import Counter, StatRegistry

#: bucket labels for the retired-op-class histograms, indexed by op value
OP_BUCKETS: Tuple[str, ...] = tuple(op.name.lower() for op in OpClass)

#: GRB transfer fates, indexed by the repro.faults XFER_* codes
XFER_BUCKETS: Tuple[str, ...] = ("ok", "dropped", "corrupted", "delayed")

#: tracer detail levels
DETAIL_LEVELS = ("sampled", "full")


class TraceEvent:
    """One recorded event: a name, a simulated timestamp, a core, args."""

    __slots__ = ("name", "ts_ps", "core", "args")

    def __init__(
        self, name: str, ts_ps: int, core: int, args: Dict[str, object]
    ) -> None:
        self.name = name
        self.ts_ps = ts_ps
        self.core = core
        self.args = args

    def __repr__(self) -> str:
        return (
            f"<TraceEvent {self.name} @{self.ts_ps}ps core={self.core} "
            f"{self.args}>"
        )


class Tracer:
    """Collects :class:`TraceEvent` records and typed registry stats.

    Parameters
    ----------
    detail:
        ``"sampled"`` (default) records lead changes, skips, faults,
        saturations and re-forks as events and aggregates GRB transfers
        into counters plus sampled occupancy time series; ``"full"``
        additionally records every individual GRB transfer as an event.
    sample_every:
        Under ``"sampled"``, one occupancy sample is taken every this many
        transfers per sender->receiver link (and the first transfer is
        always sampled).
    """

    def __init__(self, detail: str = "sampled", sample_every: int = 64) -> None:
        if detail not in DETAIL_LEVELS:
            raise ValueError(
                f"unknown detail {detail!r}; expected one of {DETAIL_LEVELS}"
            )
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.detail = detail
        self.sample_every = sample_every
        self.events: List[TraceEvent] = []
        self.registry = StatRegistry()
        #: core_id -> config name, in registration order
        self.core_names: Dict[int, str] = {}
        #: core_id -> clock period (ps), for export annotations
        self.core_periods: Dict[int, int] = {}
        #: core_id -> per-op retired counts (indexed by op value); model
        #: code increments these plain lists in the commit loop and
        #: :meth:`finalise_core` folds them into histograms
        self._op_counts: Dict[int, List[int]] = {}
        #: (sender, receiver) -> transfers seen on that link (sampling)
        self._link_counts: Dict[Tuple[int, int], int] = {}
        #: core_id of the initial leader (contests only)
        self.initial_leader: Optional[int] = None
        #: simulated end-of-run timestamp, set by :meth:`finish`
        self.end_ts_ps: Optional[int] = None

        reg = self.registry
        self._lead_changes: Counter = reg.counter(
            "contest.lead_changes", "events",
            "times leadership moved between cores",
        )
        self._transfers: Counter = reg.counter(
            "grb.transfers", "results",
            "retired-result transfers broadcast on the global result buses",
        )
        self._skip_jumps: Counter = reg.counter(
            "skip.jumps", "events",
            "event-driven skip-ahead jumps taken",
        )
        self._skip_cycles: Counter = reg.counter(
            "skip.cycles", "cycles",
            "idle cycles skipped (summed over cores)",
        )
        self._fault_events: Counter = reg.counter(
            "faults.events", "events",
            "fault injections applied (kills, stall windows, flips, "
            "corruption recoveries)",
        )
        self._saturations: Counter = reg.counter(
            "contest.saturations", "events",
            "cores removed from contesting as saturated laggers",
        )
        self._resyncs: Counter = reg.counter(
            "contest.resyncs", "events",
            "re-forks of a trailing core at the leader's retirement point",
        )

    # ------------------------------------------------------------------
    # registration (called at construction time, not in the hot loop)
    # ------------------------------------------------------------------

    def register_core(
        self, core_id: int, name: str, period_ps: int
    ) -> List[int]:
        """Register one participating core; returns its retired-op count
        array (one slot per :class:`~repro.isa.instructions.OpClass`) for
        the core's commit loop to increment in place."""
        self.core_names[core_id] = name
        self.core_periods[core_id] = period_ps
        counts = [0] * len(OP_BUCKETS)
        self._op_counts[core_id] = counts
        return counts

    def set_initial_leader(self, core_id: int) -> None:
        """Record which core holds the lead at time zero (contests)."""
        self.initial_leader = core_id

    def op_counts(self, core_id: int) -> List[int]:
        """The live retired-op count array of a registered core."""
        return self._op_counts[core_id]

    # ------------------------------------------------------------------
    # recording hooks (called from model code behind `is not None` checks)
    # ------------------------------------------------------------------

    def lead_change(
        self, ts_ps: int, from_core: int, to_core: int, seq: int
    ) -> None:
        """Leadership moved ``from_core`` -> ``to_core`` at retirement
        ``seq``."""
        self._lead_changes.inc()
        self.events.append(TraceEvent(
            "lead_change", ts_ps, to_core,
            {"from": from_core, "to": to_core, "seq": seq},
        ))

    def grb_transfer(
        self,
        ts_ps: int,
        sender: int,
        receiver: int,
        seq: int,
        occupancy: int,
        fate: int = 0,
    ) -> None:
        """One retired result crossed a GRB hop (``fate``: XFER_* code)."""
        self._transfers.inc()
        if fate:
            self.registry.counter(
                f"grb.{XFER_BUCKETS[fate]}", "results",
                f"transfers {XFER_BUCKETS[fate]} in flight",
            ).inc()
        link = (sender, receiver)
        seen = self._link_counts.get(link, 0)
        self._link_counts[link] = seen + 1
        if seen % self.sample_every == 0:
            self.registry.timeseries(
                f"grb.fifo_occupancy.c{receiver}_from_c{sender}", "results",
                f"receive-FIFO occupancy at core {receiver} for results "
                f"from core {sender} (sampled every "
                f"{self.sample_every} transfers)",
            ).sample(ts_ps, float(occupancy))
        if self.detail == "full":
            self.events.append(TraceEvent(
                "grb_transfer", ts_ps, receiver,
                {"sender": sender, "seq": seq, "occupancy": occupancy,
                 "fate": XFER_BUCKETS[fate]},
            ))

    def skip(
        self,
        ts_ps: int,
        core: int,
        from_cycle: int,
        to_cycle: int,
        dur_ps: int,
    ) -> None:
        """An event-driven skip-ahead jump on one core's clock."""
        self._skip_jumps.inc()
        self._skip_cycles.inc(to_cycle - from_cycle)
        self.events.append(TraceEvent(
            "skip", ts_ps, core,
            {"from_cycle": from_cycle, "to_cycle": to_cycle,
             "dur_ps": dur_ps},
        ))

    def fault(self, ts_ps: int, core: int, kind: str, detail: str = "") -> None:
        """A fault-plan action fired (kill / stall window / flip /
        corruption recovery)."""
        self._fault_events.inc()
        self.registry.counter(
            f"faults.{kind}", "events", f"'{kind}' fault actions applied",
        ).inc()
        self.events.append(TraceEvent(
            "fault", ts_ps, core, {"kind": kind, "detail": detail},
        ))

    def saturated(self, ts_ps: int, core: int, name: str) -> None:
        """A core was removed from contesting as a saturated lagger."""
        self._saturations.inc()
        self.events.append(TraceEvent(
            "saturated", ts_ps, core, {"config": name},
        ))

    def resync(self, ts_ps: int, core: int, target_seq: int) -> None:
        """A core was re-forked at the leader's retirement point."""
        self._resyncs.inc()
        self.events.append(TraceEvent(
            "resync", ts_ps, core, {"target_seq": target_seq},
        ))

    def rob_occupancy(self, ts_ps: int, core: int, occupancy: int) -> None:
        """Sample one core's ROB occupancy (taken at lead changes)."""
        self.registry.timeseries(
            f"core{core}.rob_occupancy", "instructions",
            f"ROB occupancy of core {core}, sampled at lead changes",
        ).sample(ts_ps, float(occupancy))

    # ------------------------------------------------------------------
    # finalisation (after the run, outside any hot path)
    # ------------------------------------------------------------------

    def finalise_core(
        self, core_id: int, committed: int, cycles: int, time_ps: int
    ) -> None:
        """Fold one finished core's counters into the registry."""
        name = self.core_names.get(core_id, str(core_id))
        retired = self.registry.counter(
            f"core{core_id}.retired", "instructions",
            f"instructions retired by core {core_id} ({name})",
        )
        retired.inc(committed - retired.value)
        cycles_c = self.registry.counter(
            f"core{core_id}.cycles", "cycles",
            f"clock cycles simulated on core {core_id} ({name})",
        )
        cycles_c.inc(cycles - cycles_c.value)
        self.registry.gauge(
            f"core{core_id}.time_ps", "ps",
            f"simulated time reached by core {core_id} ({name})",
        ).set(float(time_ps))
        hist = self.registry.histogram(
            f"core{core_id}.retired_ops", "instructions",
            f"retired instructions of core {core_id} ({name}) by op class",
        )
        counts = self._op_counts.get(core_id)
        if counts is not None:
            for op, count in enumerate(counts):
                have = hist.buckets.get(OP_BUCKETS[op], 0)
                if count > have:
                    hist.add(OP_BUCKETS[op], count - have)

    def finish(self, ts_ps: int) -> None:
        """Mark the simulated end of the run (closes open lead intervals
        in the Chrome export)."""
        self.end_ts_ps = ts_ps
        self.registry.gauge(
            "run.end_ts_ps", "ps", "simulated timestamp of run completion",
        ).set(float(ts_ps))
