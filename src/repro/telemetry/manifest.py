"""Run manifests: what ran, under which configuration, at what cost.

A :class:`RunManifest` is the provenance record ``repro-experiments
--manifest`` emits next to its rendered output: a content hash of the
run configuration (scale, experiment selection, parallelism, cache
arrangement, and the engine's job-schema version — anything that could
change *which* simulations execute), the trace seed, wall time, and the
engine's cache hit/miss counters.  Two runs with the same
``config_hash`` simulated the same work; their differing wall times and
hit rates are then attributable to cache state and hardware alone.
"""

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.engine.engine import SimEngine
from repro.engine.jobs import SCHEMA_VERSION
from repro.telemetry.registry import StatRegistry

#: manifest record format version
MANIFEST_SCHEMA = 1


def config_hash(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form of a config payload."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one runner invocation (see the module docstring)."""

    config_hash: str
    scale: str
    experiments: Tuple[str, ...]
    jobs: int
    cache_dir: Optional[str]
    no_cache: bool
    seed: int
    wall_seconds: float
    job_schema: int = SCHEMA_VERSION
    schema: int = MANIFEST_SCHEMA
    #: engine cache counters for the run (empty when no engine attached)
    engine_stats: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> str:
        """The manifest as pretty, key-sorted JSON."""
        return json.dumps(asdict(self), sort_keys=True, indent=2)


def build_manifest(
    scale: str,
    experiments: Sequence[str],
    jobs: int,
    cache_dir: Optional[str],
    no_cache: bool,
    seed: int,
    wall_seconds: float,
    engine: Optional[SimEngine] = None,
    registry: Optional["StatRegistry"] = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` for one finished runner invocation.

    ``registry`` folds a telemetry registry's scalar stats (counters and
    gauges) into ``engine_stats`` under their declared names — the
    simulation-as-a-service layer surfaces its ``service.*`` counters in
    every manifest this way (``docs/service.md``).
    """
    payload: Dict[str, object] = {
        "scale": scale,
        "experiments": list(experiments),
        "jobs": jobs,
        "cache_dir": cache_dir,
        "no_cache": no_cache,
        "seed": seed,
        "job_schema": SCHEMA_VERSION,
    }
    stats: Dict[str, float] = {}
    if engine is not None:
        stats = {
            "memory_hits": float(engine.stats.memory_hits),
            "store_hits": float(engine.stats.store_hits),
            "misses": float(engine.stats.misses),
            "failures": float(engine.stats.failures),
            "sim_seconds": float(engine.stats.sim_seconds),
        }
        if engine.store is not None:
            # persistent-store health (integrity + write-error counters):
            # a silently dropped or corrupt record would be invisible in
            # results, so it must be visible in provenance
            for name, value in engine.store.counters().items():
                stats[f"store_{name}"] = float(value)
    if registry is not None:
        for stat in registry:
            snapshot = stat.snapshot_value()
            if isinstance(snapshot, (int, float)):
                stats[stat.name] = float(snapshot)
    return RunManifest(
        config_hash=config_hash(payload),
        scale=scale,
        experiments=tuple(experiments),
        jobs=jobs,
        cache_dir=cache_dir,
        no_cache=no_cache,
        seed=seed,
        wall_seconds=wall_seconds,
        engine_stats=stats,
    )


def write_manifest(path: Union[str, Path], manifest: RunManifest) -> Path:
    """Serialise ``manifest`` as JSON to ``path``; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(manifest.to_json() + "\n", encoding="utf-8")
    return out
