"""The typed stat registry: declared units, docstrings, four stat kinds.

A :class:`StatRegistry` replaces free-form ``Dict[str, object]`` stat
accumulators with *declared* statistics: every stat has a kind
(:class:`Counter`, :class:`Gauge`, :class:`Histogram`,
:class:`TimeSeries`), a unit string, and a one-line docstring, so a
metrics snapshot is self-describing and a typo in a stat name is an error
at declaration time instead of a silently fresh dict key.

Declaration is idempotent: ``registry.counter("grb.transfers", ...)``
returns the existing stat when one is already declared under that name,
and raises when the existing declaration disagrees on kind or unit — two
call sites can therefore share a stat without coordinating, but cannot
accidentally alias two different quantities under one name.

Registries are pure accumulators of *simulated* quantities: nothing in
this module reads host clocks or randomness, so attaching telemetry can
never perturb a result (``tests/differential/test_telemetry.py`` pins
this).
"""

from typing import Dict, Iterator, List, Optional, Tuple, Type, TypeVar, Union

#: JSON-ready snapshot value of one stat.
SnapshotValue = Union[
    int, float, Dict[str, int], List[Tuple[int, float]]
]


class Stat:
    """Base class: one named, unit-annotated, documented statistic."""

    #: kind tag in snapshots/exports ("counter", "gauge", ...)
    kind: str = "stat"

    def __init__(self, name: str, unit: str, doc: str) -> None:
        if not name:
            raise ValueError("a stat needs a non-empty name")
        self.name = name
        self.unit = unit
        self.doc = doc

    def snapshot_value(self) -> SnapshotValue:
        """The stat's current value in a JSON-ready shape."""
        raise NotImplementedError

    def describe(self) -> Dict[str, SnapshotValue]:
        """Full self-describing record: kind, unit, doc, value."""
        return {
            "kind": self.kind,
            "unit": self.unit,
            "doc": self.doc,
            "value": self.snapshot_value(),
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}={self.snapshot_value()!r}>"


class Counter(Stat):
    """A monotonically increasing integer count."""

    kind = "counter"

    def __init__(self, name: str, unit: str, doc: str) -> None:
        super().__init__(name, unit, doc)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the count."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n

    def snapshot_value(self) -> int:
        return self.value


class Gauge(Stat):
    """A point-in-time numeric value (set, not accumulated)."""

    kind = "gauge"

    def __init__(self, name: str, unit: str, doc: str) -> None:
        super().__init__(name, unit, doc)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def snapshot_value(self) -> float:
        return self.value


class Histogram(Stat):
    """Counts bucketed by a categorical label (e.g. retired op class).

    ``total`` always equals the sum of the bucket counts, which test
    invariants compare against sibling counters (histogram totals ==
    counter sums).
    """

    kind = "histogram"

    def __init__(self, name: str, unit: str, doc: str) -> None:
        super().__init__(name, unit, doc)
        self.buckets: Dict[str, int] = {}

    def add(self, bucket: str, n: int = 1) -> None:
        """Add ``n`` observations to ``bucket``."""
        if n < 0:
            raise ValueError(f"histogram {self.name} cannot decrease (n={n})")
        self.buckets[bucket] = self.buckets.get(bucket, 0) + n

    @property
    def total(self) -> int:
        """Sum over all buckets."""
        return sum(self.buckets.values())

    def snapshot_value(self) -> Dict[str, int]:
        return dict(sorted(self.buckets.items()))


class TimeSeries(Stat):
    """Samples of a value over simulated time (integer picoseconds)."""

    kind = "timeseries"

    def __init__(self, name: str, unit: str, doc: str) -> None:
        super().__init__(name, unit, doc)
        #: (ts_ps, value) in sample order; timestamps are simulated time
        self.samples: List[Tuple[int, float]] = []

    def sample(self, ts_ps: int, value: float) -> None:
        """Append one sample at simulated time ``ts_ps``."""
        self.samples.append((ts_ps, value))

    def snapshot_value(self) -> List[Tuple[int, float]]:
        return list(self.samples)


_S = TypeVar("_S", bound=Stat)


class StatRegistry:
    """A namespace of declared stats (see the module docstring)."""

    def __init__(self) -> None:
        self._stats: Dict[str, Stat] = {}

    # --- declaration (idempotent, conflict-checked) --------------------

    def _declare(
        self, cls: Type[_S], name: str, unit: str, doc: str
    ) -> _S:
        existing = self._stats.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.unit != unit:
                raise ValueError(
                    f"stat {name!r} already declared as "
                    f"{existing.kind}[{existing.unit}]; cannot redeclare as "
                    f"{cls.kind}[{unit}]"
                )
            return existing
        stat = cls(name, unit, doc)
        self._stats[name] = stat
        return stat

    def counter(self, name: str, unit: str = "", doc: str = "") -> Counter:
        """Declare (or fetch) a :class:`Counter`."""
        return self._declare(Counter, name, unit, doc)

    def gauge(self, name: str, unit: str = "", doc: str = "") -> Gauge:
        """Declare (or fetch) a :class:`Gauge`."""
        return self._declare(Gauge, name, unit, doc)

    def histogram(self, name: str, unit: str = "", doc: str = "") -> Histogram:
        """Declare (or fetch) a :class:`Histogram`."""
        return self._declare(Histogram, name, unit, doc)

    def timeseries(
        self, name: str, unit: str = "", doc: str = ""
    ) -> TimeSeries:
        """Declare (or fetch) a :class:`TimeSeries`."""
        return self._declare(TimeSeries, name, unit, doc)

    # --- access ---------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def __iter__(self) -> Iterator[Stat]:
        """Stats in sorted-name order (stable across declaration order)."""
        for name in sorted(self._stats):
            yield self._stats[name]

    def get(self, name: str) -> Optional[Stat]:
        """The stat declared under ``name``, or None."""
        return self._stats.get(name)

    def __getitem__(self, name: str) -> Stat:
        try:
            return self._stats[name]
        except KeyError:
            raise KeyError(
                f"no stat declared under {name!r}; "
                f"known: {', '.join(sorted(self._stats)) or '<none>'}"
            ) from None

    # --- export ---------------------------------------------------------

    def snapshot(self) -> Dict[str, SnapshotValue]:
        """``{name: value}`` for every stat, names sorted."""
        return {stat.name: stat.snapshot_value() for stat in self}

    def describe(self) -> Dict[str, Dict[str, SnapshotValue]]:
        """``{name: {kind, unit, doc, value}}`` — the self-describing
        form metric snapshots embed."""
        return {stat.name: stat.describe() for stat in self}
