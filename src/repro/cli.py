"""Command-line tools.

``repro-sim`` — run one standalone or contested simulation:

    repro-sim gcc --core gcc                      # standalone
    repro-sim gcc --core gcc --core vpr           # 2-way contesting
    repro-sim twolf --core vortex --core vpr --latency-ns 5 --length 40000

Simulations resolve through the engine's persistent result store (under
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), so repeating an invocation —
or re-running a benchmark/seed/length combination any experiment already
simulated — replays from cache; pass ``--no-cache`` to force a fresh run.

``repro-trace`` — generate, save, load and characterise traces:

    repro-trace generate gcc --length 60000 --out gcc.rtrc
    repro-trace info gcc.rtrc
    repro-trace characterize gcc --length 20000
"""

import argparse
from typing import List, Optional

from repro.backend import BACKEND_CHOICES, resolve_backend_name
from repro.core.system import ContestingSystem
from repro.corpus import resolve_profile
from repro.engine import ContestJob, ResultStore, SimEngine, StandaloneJob
from repro.engine import TraceSpec
from repro.engine.jobs import TraceLike, resolve_trace
from repro.isa.generator import generate_trace
from repro.isa.phases import PhaseMix
from repro.isa.trace import Trace
from repro.isa.serialize import load_trace, save_trace
from repro.isa.stats import characterize
from repro.isa.workloads import BENCHMARKS
from repro.uarch.config import APPENDIX_A_CORES, core_config
from repro.uarch.run import run_standalone
from repro.util.tables import format_table


def _named_profile(name: str) -> PhaseMix:
    """Resolve a legacy benchmark or ``corpus/...`` workload name, turning
    a registry miss into a CLI-friendly error."""
    try:
        return resolve_profile(name)
    except KeyError:
        raise SystemExit(
            f"unknown workload {name!r}; expected one of "
            f"{', '.join(BENCHMARKS)}, a corpus workload "
            f"(list them with `python -m repro.corpus list`), "
            f"or a .rtrc file"
        ) from None


def _trace_from_args(args: argparse.Namespace) -> Trace:
    if args.workload.endswith(".rtrc"):
        return load_trace(args.workload)
    return generate_trace(
        _named_profile(args.workload), args.length, seed=args.seed
    )


def _trace_ref_from_args(args: argparse.Namespace) -> TraceLike:
    """A trace reference for engine jobs: a tiny :class:`TraceSpec` recipe
    for named benchmark/corpus profiles (cache-compatible with the
    experiment runner's keys), or the loaded trace by value for ``.rtrc``
    files."""
    if args.workload.endswith(".rtrc"):
        if getattr(args, "stream", False):
            raise SystemExit(
                "--stream regenerates the trace region by region, so it "
                "needs a named profile, not a .rtrc file"
            )
        return load_trace(args.workload)
    _named_profile(args.workload)  # validate eagerly, before any engine work
    return TraceSpec(
        args.workload, args.length, args.seed,
        stream=getattr(args, "stream", False),
    )


def sim_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-sim``."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Run a standalone or contested simulation",
    )
    parser.add_argument(
        "workload",
        help=f"benchmark name ({', '.join(BENCHMARKS)}), a corpus workload "
             "(corpus/...; list with `python -m repro.corpus list`), or a "
             ".rtrc trace file",
    )
    parser.add_argument(
        "--core", action="append", default=[], metavar="NAME",
        help=f"core type (repeat for contesting); one of {', '.join(APPENDIX_A_CORES)}",
    )
    parser.add_argument("--length", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--stream", action="store_true",
        help="generate the trace region by region instead of materialising "
             "it (bit-identical results; see docs/corpus.md); keys the "
             "cache separately from materialised runs",
    )
    parser.add_argument("--latency-ns", type=float, default=1.0)
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="reference",
        help="execution engine (see docs/backends.md): 'columnar' is the "
             "NumPy fast path with deterministic reference fallback, "
             "'auto' picks it when NumPy is importable (default: reference)",
    )
    parser.add_argument(
        "--lagger-policy", choices=("disable", "resync"), default="disable"
    )
    fault = parser.add_argument_group(
        "fault injection (contested runs only; see docs/robustness.md)"
    )
    fault.add_argument(
        "--grb-drop", type=float, default=0.0, metavar="RATE",
        help="fraction of GRB transfers lost in flight",
    )
    fault.add_argument(
        "--grb-corrupt", type=float, default=0.0, metavar="RATE",
        help="fraction of GRB transfers garbled (detected on use; the "
             "receiver recovers by resync)",
    )
    fault.add_argument(
        "--grb-delay", type=float, default=0.0, metavar="RATE",
        help="fraction of GRB transfers delayed by --grb-delay-ns",
    )
    fault.add_argument(
        "--grb-delay-ns", type=float, default=10.0, metavar="NS",
        help="extra latency charged to delayed transfers (default: 10)",
    )
    fault.add_argument(
        "--kill-core", type=int, default=None, metavar="ID",
        help="kill this core (0-based index into the --core list) mid-run",
    )
    fault.add_argument(
        "--kill-at", type=int, default=0, metavar="COMMITS",
        help="retirement count at which --kill-core fires (default: 0)",
    )
    fault.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the per-transfer fault decisions (default: 0)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result store",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result store location (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    telemetry = parser.add_argument_group(
        "telemetry (see docs/observability.md)"
    )
    telemetry.add_argument(
        "--trace", default=None, metavar="FILE", dest="trace_out",
        help="write a Chrome trace_event JSON of the run (load in "
             "https://ui.perfetto.dev or chrome://tracing); forces a "
             "fresh simulation (never served from cache)",
    )
    telemetry.add_argument(
        "--metrics", default=None, metavar="FILE", dest="metrics_out",
        help="write a JSONL metrics snapshot of the run (typed registry "
             "stats with units and docs); forces a fresh simulation",
    )
    telemetry.add_argument(
        "--trace-detail", choices=("sampled", "full"), default="sampled",
        help="'full' records every individual GRB transfer as an event "
             "(large files); 'sampled' (default) aggregates them",
    )
    args = parser.parse_args(argv)

    cores = args.core or [
        args.workload if args.workload in APPENDIX_A_CORES else "gcc"
    ]
    configs = [core_config(name) for name in cores]
    # "auto" resolves here, at the environment boundary: jobs and cache
    # keys only ever carry a concrete backend name
    backend = resolve_backend_name(args.backend)
    trace_ref = _trace_ref_from_args(args)
    engine = SimEngine(
        store=None if args.no_cache else ResultStore(args.cache_dir)
    )
    tracer = None
    if args.trace_out or args.metrics_out:
        # telemetry must observe the run live, so never replay from cache
        from repro.telemetry import Tracer

        tracer = Tracer(detail=args.trace_detail)

    if len(configs) == 1:
        if (
            args.grb_drop or args.grb_corrupt or args.grb_delay
            or args.kill_core is not None
        ):
            parser.error("fault injection requires a contested run "
                         "(two or more --core)")
        if tracer is not None:
            result = run_standalone(
                configs[0], resolve_trace(trace_ref), tracer=tracer,
                backend=backend,
            )
        else:
            result = engine.run(
                StandaloneJob(configs[0], trace_ref, backend=backend)
            )
        print(
            f"{result.trace_name} on {configs[0].name}: {result.ipt:.3f} IPT "
            f"({result.ipc:.2f} IPC, {result.cycles} cycles, "
            f"mispredict {result.stats.mispredict_rate:.1%}, "
            f"L1 miss {result.stats.l1_misses}/{result.stats.l1_accesses})"
        )
    else:
        faults = None
        if (
            args.grb_drop or args.grb_corrupt or args.grb_delay
            or args.kill_core is not None
        ):
            from repro.faults import FaultPlan

            if args.kill_core is not None and not (
                0 <= args.kill_core < len(configs)
            ):
                parser.error(
                    f"--kill-core must index the --core list "
                    f"(0..{len(configs) - 1})"
                )
            faults = FaultPlan(
                seed=args.fault_seed,
                drop_rate=args.grb_drop,
                corrupt_rate=args.grb_corrupt,
                delay_rate=args.grb_delay,
                delay_ns=args.grb_delay_ns,
                kill_core=args.kill_core,
                kill_at_commit=args.kill_at,
            )
        if tracer is not None:
            result = ContestingSystem(
                configs, resolve_trace(trace_ref),
                grb_latency_ns=args.latency_ns,
                lagger_policy=args.lagger_policy,
                faults=faults,
                tracer=tracer,
                backend=backend,
            ).run()
        else:
            result = engine.run(ContestJob(
                configs=tuple(configs), trace=trace_ref,
                grb_latency_ns=args.latency_ns,
                lagger_policy=args.lagger_policy,
                faults=faults,
                backend=backend,
            ))
        print(
            f"{result.trace_name} contested on {'+'.join(cores)}: "
            f"{result.ipt:.3f} IPT (winner {result.winner}, "
            f"{result.lead_changes} lead changes, "
            f"saturated: {', '.join(result.saturated) or 'none'})"
        )
        for key, stats in result.per_core.items():
            print(
                f"  {key}: committed {stats.committed}, "
                f"injected {stats.injected}, "
                f"early-resolved {stats.early_resolved}"
            )
    if tracer is not None:
        from repro.telemetry import metrics_snapshot, write_chrome_trace
        from repro.telemetry import write_metrics_jsonl

        if args.trace_out:
            path = write_chrome_trace(args.trace_out, tracer)
            print(f"wrote Chrome trace to {path} "
                  f"({len(tracer.events)} events; open in Perfetto)")
        if args.metrics_out:
            path = write_metrics_jsonl(args.metrics_out, [metrics_snapshot(
                tracer.registry,
                meta={
                    "workload": args.workload, "cores": cores,
                    "length": args.length, "seed": args.seed,
                },
            )])
            print(f"wrote metrics snapshot to {path} "
                  f"({len(tracer.registry)} stats)")
    return 0


def trace_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-trace``."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate, inspect and characterise synthetic traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and save a trace")
    gen.add_argument(
        "workload",
        help="benchmark or corpus workload name "
             "(list the corpus with `python -m repro.corpus list`)",
    )
    gen.add_argument("--length", type=int, default=60_000)
    gen.add_argument("--seed", type=int, default=11)
    gen.add_argument("--out", required=True, metavar="FILE.rtrc")

    info = sub.add_parser("info", help="summarise a saved trace")
    info.add_argument("path", metavar="FILE.rtrc")

    char = sub.add_parser(
        "characterize", help="characterise a benchmark profile or saved trace"
    )
    char.add_argument("workload")
    char.add_argument("--length", type=int, default=20_000)
    char.add_argument("--seed", type=int, default=11)

    args = parser.parse_args(argv)

    if args.command == "generate":
        trace = generate_trace(
            _named_profile(args.workload), args.length, seed=args.seed
        )
        save_trace(trace, args.out)
        print(f"wrote {args.out}: {len(trace)} instructions, "
              f"{len(trace.phase_starts)} phase starts")
        return 0

    if args.command == "info":
        trace = load_trace(args.path)
        print(f"{args.path}: trace {trace.name!r}, {len(trace)} instructions, "
              f"seed {trace.seed}, {len(trace.phase_starts)} phase starts")
        return 0

    # characterize
    args.workload = args.workload  # may be a name or .rtrc
    trace = _trace_from_args(args)
    ch = characterize(trace)
    print(format_table(
        ["property", "value"],
        ch.rows(),
        title=f"Characterisation of {trace.name} ({len(trace)} instructions)",
    ))
    return 0
