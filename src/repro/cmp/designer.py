"""Exhaustive core-type combination search and the paper's named designs."""

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cmp.merit import IptMatrix, design_merit, harmonic_ipt, preferred_core


@dataclass(frozen=True)
class CmpDesign:
    """A constrained heterogeneous CMP design (a set of core types)."""

    name: str                 # HET-A, HET-B, HET-C, HET-D, HOM, HET-ALL
    merit: str                # figure of merit used to select it
    core_types: Tuple[str, ...]
    merit_value: float
    harmonic_mean_ipt: float  # Table 1's comparison column

    def best_core_for(self, matrix: IptMatrix, bench: str) -> str:
        """Most suitable core type of this design for a benchmark."""
        return preferred_core(matrix, bench, self.core_types)


def best_combination(
    matrix: IptMatrix,
    n_types: int,
    merit: str,
    candidates: Sequence[str] = (),
) -> Tuple[Tuple[str, ...], float]:
    """Search all combinations of ``n_types`` core types maximising ``merit``.

    The candidate pool defaults to every core type present in the matrix.
    Returns ``(core_types, merit_value)``; ties break toward the
    lexicographically smallest combination for determinism.
    """
    pool = sorted(candidates or next(iter(matrix.values())).keys())
    if n_types < 1 or n_types > len(pool):
        raise ValueError(f"n_types must be in [1, {len(pool)}]")
    best: Tuple[Tuple[str, ...], float] = ((), float("-inf"))
    for combo in itertools.combinations(pool, n_types):
        value = design_merit(matrix, combo, merit)
        if value > best[1]:
            best = (combo, value)
    return best


def design_suite(matrix: IptMatrix) -> Dict[str, CmpDesign]:
    """Construct the paper's five (plus HET-D) named CMP designs (Table 1).

    * HET-A: two core types maximising ``avg``
    * HET-B: two core types maximising ``har``
    * HET-C: two core types maximising ``cw-har``
    * HET-D: three core types maximising ``har`` (Section 7.3)
    * HOM:   the single best core type.  The paper's Table 1 lists "avg or
      har" because the same core (gcc's) maximises both on its matrix; on
      ours they can differ, and we use ``har`` — the figure of merit the
      table's comparison column is built on and the one representing
      single-thread total execution time.
    * HET-ALL: every core type (each benchmark on its customised core)
    """
    designs: Dict[str, CmpDesign] = {}

    def make(name: str, merit: str, cores: Tuple[str, ...], value: float) -> None:
        designs[name] = CmpDesign(
            name=name,
            merit=merit,
            core_types=cores,
            merit_value=value,
            harmonic_mean_ipt=harmonic_ipt(matrix, cores),
        )

    for name, merit in [("HET-A", "avg"), ("HET-B", "har"), ("HET-C", "cw-har")]:
        cores, value = best_combination(matrix, 2, merit)
        make(name, merit, cores, value)
    cores, value = best_combination(matrix, 3, "har")
    make("HET-D", "har", cores, value)
    cores, value = best_combination(matrix, 1, "har")
    make("HOM", "har", cores, value)
    all_cores = tuple(sorted(next(iter(matrix.values())).keys()))
    make("HET-ALL", "none", all_cores, design_merit(matrix, all_cores, "har"))
    return designs


def design_table_rows(designs: Dict[str, CmpDesign]) -> List[List[object]]:
    """Rows for the Table-1 rendering (name, merit, cores, har-IPT)."""
    order = ["HET-A", "HET-B", "HET-C", "HET-D", "HOM", "HET-ALL"]
    rows = []
    for name in order:
        if name not in designs:
            continue
        d = designs[name]
        rows.append(
            [d.name, d.merit, " & ".join(d.core_types), d.harmonic_mean_ipt]
        )
    return rows
