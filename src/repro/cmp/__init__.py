"""Constrained heterogeneous CMP design (Section 6).

Given the benchmark-on-core IPT matrix, this package selects which core
types to include in a CMP with a limited number of core types, under the
paper's three figures of merit:

* ``avg`` — arithmetic-mean IPT of each benchmark on its most suitable
  available core (raw throughput; robust to unknown benchmark frequencies),
* ``har`` — harmonic-mean IPT (total execution time of the suite),
* ``cw-har`` — contention-weighted harmonic-mean IPT: each benchmark's best
  IPT is divided by the number of benchmarks preferring the same core type
  before the harmonic mean, modelling queueing under heavy load via
  Little's law (Section 6.1).

It also constructs the paper's named designs: HET-A/B/C (two core types
under avg/har/cw-har), HET-D (three core types under har), HOM (the single
best core type), and HET-ALL (every core type).
"""

from repro.cmp.designer import CmpDesign, best_combination, design_suite
from repro.cmp.queueing import CmpQueueSimulator, JobStream, QueueingResult, compare_designs_under_load
from repro.cmp.merit import (
    MERITS,
    contention_weighted_harmonic_ipt,
    design_merit,
    harmonic_ipt,
    mean_ipt,
    preferred_core,
)

__all__ = [
    "MERITS",
    "CmpDesign",
    "CmpQueueSimulator",
    "JobStream",
    "QueueingResult",
    "compare_designs_under_load",
    "best_combination",
    "contention_weighted_harmonic_ipt",
    "design_merit",
    "design_suite",
    "harmonic_ipt",
    "mean_ipt",
    "preferred_core",
]
