"""Multiprogrammed job-stream simulation (the Section-6.1 setting).

The contention-weighted harmonic-mean figure of merit is derived from two
assumptions: jobs of each benchmark type arrive uniformly, and the scheduler
directs a job to the core type it prefers even if all cores of that type
are busy (queueing).  Under Little's law the expected queue length at a
core type is then proportional to the number of benchmark types preferring
it, which is exactly the division the ``cw-har`` merit applies.

This module *checks* that reasoning with a discrete-event simulation: jobs
(benchmark type + instruction count) arrive as a Poisson stream, are
dispatched to per-core-type FIFO queues under a scheduling policy, and are
served at the IPT the matrix gives for (benchmark, core type).  The
``exp_queueing`` extension experiment correlates design rankings by merit
with measured mean turnaround times.
"""

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cmp.merit import IptMatrix, preferred_core
from repro.util.rng import substream


@dataclass(frozen=True)
class JobStream:
    """Parameters of the synthetic job stream."""

    #: mean job arrivals per nanosecond (suite-wide)
    arrival_rate: float
    #: instructions per job (service time = length / IPT)
    job_length: int = 1_000_000
    #: number of jobs to simulate
    jobs: int = 400
    #: per-benchmark submission weights (uniform when empty)
    weights: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.job_length <= 0 or self.jobs <= 0:
            raise ValueError("job_length and jobs must be positive")


@dataclass
class QueueingResult:
    """Aggregate outcome of one job-stream simulation."""

    design_cores: Tuple[str, ...]
    policy: str
    jobs: int
    makespan_ns: float
    mean_turnaround_ns: float
    mean_wait_ns: float
    mean_service_ns: float
    #: fraction of wall-clock each core type spent busy (averaged over its
    #: instances)
    utilization: Dict[str, float]
    #: jobs dispatched to each core type
    dispatched: Dict[str, int]

    @property
    def throughput_jobs_per_us(self) -> float:
        return self.jobs / (self.makespan_ns / 1000.0)


class CmpQueueSimulator:
    """Discrete-event simulation of jobs on a constrained CMP.

    Parameters
    ----------
    matrix:
        The benchmark-on-core IPT matrix (instructions per ns).
    core_types:
        The design's core types.
    cores_per_type:
        Instances of each type (the paper allows multiple instances).
    policy:
        ``"preferred"`` — queue at the core type the job prefers even if
        busy (the Section-6.1 assumption behind cw-har);
        ``"best-available"`` — take the best *idle* core now, else join the
        shortest queue weighted by the job's IPT there;
        ``"contest-when-idle"`` — the Section-7.1 need-to-have mode: if one
        instance of *every* core type is idle when the job arrives, all of
        them gang up on it (contested service at ``contest_ipt[bench]``);
        otherwise fall back to best-available.  Requires ``contest_ipt``.
    contest_ipt:
        Per-benchmark contested IPT of the design's core types (measured by
        :class:`repro.core.system.ContestingSystem`); only used by the
        ``contest-when-idle`` policy.
    """

    def __init__(
        self,
        matrix: IptMatrix,
        core_types: Sequence[str],
        cores_per_type: int = 1,
        policy: str = "preferred",
        contest_ipt: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not core_types:
            raise ValueError("need at least one core type")
        if cores_per_type < 1:
            raise ValueError("cores_per_type must be >= 1")
        if policy not in ("preferred", "best-available", "contest-when-idle"):
            raise ValueError(f"unknown policy {policy!r}")
        if policy == "contest-when-idle" and not contest_ipt:
            raise ValueError("contest-when-idle requires contest_ipt")
        self.matrix = matrix
        self.core_types = tuple(core_types)
        self.cores_per_type = cores_per_type
        self.policy = policy
        self.contest_ipt = dict(contest_ipt or {})
        #: jobs served in contested (ganged) mode
        self.contested_jobs = 0

    def _service_ns(self, bench: str, core: str, length: int) -> float:
        return length / self.matrix[bench][core]

    def _choose_core(
        self, bench: str, free_at: Dict[str, List[float]], now: float,
        length: int,
    ) -> str:
        if self.policy == "preferred":
            return preferred_core(self.matrix, bench, self.core_types)
        # best-available (also the contest-when-idle fallback):
        # best-available: minimise this job's completion time right now
        best = None
        for core in self.core_types:
            start = max(now, min(free_at[core]))
            finish = start + self._service_ns(bench, core, length)
            if best is None or finish < best[0]:
                best = (finish, core)
        return best[1]

    def run(self, stream: JobStream, seed: int = 0) -> QueueingResult:
        """Simulate the stream; returns aggregate metrics."""
        rng = substream(seed, "queueing")  # policy-independent: the
        # same seed yields the same arrival stream under either policy
        benches = sorted(self.matrix)
        weights = [stream.weights.get(b, 1.0) for b in benches]

        # arrival times (Poisson) and benchmark types
        arrivals: List[Tuple[float, str]] = []
        t = 0.0
        for _ in range(stream.jobs):
            t += rng.expovariate(stream.arrival_rate)
            bench = rng.choices(benches, weights=weights, k=1)[0]
            arrivals.append((t, bench))

        # earliest-free-time per core instance, grouped by type
        free_at: Dict[str, List[float]] = {
            core: [0.0] * self.cores_per_type for core in self.core_types
        }
        busy_ns: Dict[str, float] = {core: 0.0 for core in self.core_types}
        dispatched: Dict[str, int] = {core: 0 for core in self.core_types}

        turnaround = 0.0
        wait = 0.0
        service_total = 0.0
        makespan = 0.0

        for arrive, bench in arrivals:
            if self.policy == "contest-when-idle":
                idle_everywhere = all(
                    min(instances) <= arrive
                    for instances in free_at.values()
                )
                if idle_everywhere and bench in self.contest_ipt:
                    # gang one instance of every type on this job
                    service = stream.job_length / self.contest_ipt[bench]
                    finish = arrive + service
                    for core_name, instances in free_at.items():
                        index = min(
                            range(len(instances)), key=instances.__getitem__
                        )
                        instances[index] = finish
                        busy_ns[core_name] += service
                    dispatched[
                        preferred_core(self.matrix, bench, self.core_types)
                    ] += 1
                    self.contested_jobs += 1
                    turnaround += finish - arrive
                    service_total += service
                    if finish > makespan:
                        makespan = finish
                    continue
            core = self._choose_core(bench, free_at, arrive, stream.job_length)
            instances = free_at[core]
            index = min(range(len(instances)), key=instances.__getitem__)
            start = max(arrive, instances[index])
            service = self._service_ns(bench, core, stream.job_length)
            finish = start + service
            instances[index] = finish
            busy_ns[core] += service
            dispatched[core] += 1
            turnaround += finish - arrive
            wait += start - arrive
            service_total += service
            if finish > makespan:
                makespan = finish

        jobs = stream.jobs
        return QueueingResult(
            design_cores=self.core_types,
            policy=self.policy,
            jobs=jobs,
            makespan_ns=makespan,
            mean_turnaround_ns=turnaround / jobs,
            mean_wait_ns=wait / jobs,
            mean_service_ns=service_total / jobs,
            utilization={
                core: busy_ns[core] / (makespan * self.cores_per_type)
                for core in self.core_types
            },
            dispatched=dispatched,
        )


def compare_designs_under_load(
    matrix: IptMatrix,
    designs: Mapping[str, Sequence[str]],
    stream: JobStream,
    cores_per_type: int = 1,
    policy: str = "preferred",
    seed: int = 0,
) -> Dict[str, QueueingResult]:
    """Simulate the same job stream on several designs."""
    return {
        name: CmpQueueSimulator(
            matrix, cores, cores_per_type=cores_per_type, policy=policy
        ).run(stream, seed=seed)
        for name, cores in designs.items()
    }
