"""Figures of merit for constrained heterogeneous CMP design (Section 6.1).

All functions take an *IPT matrix* ``matrix[benchmark][core_type]`` and a
set of available core types, and score the design under the assumption that
each benchmark runs on the most suitable available core type.
"""

from collections import Counter
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.util.stats import arithmetic_mean, harmonic_mean

IptMatrix = Mapping[str, Mapping[str, float]]


def _check(matrix: IptMatrix, cores: Sequence[str]) -> None:
    if not cores:
        raise ValueError("a design needs at least one core type")
    for bench, row in matrix.items():
        for core in cores:
            if core not in row:
                raise KeyError(f"matrix[{bench!r}] lacks core type {core!r}")


def preferred_core(
    matrix: IptMatrix, bench: str, cores: Sequence[str]
) -> str:
    """The most suitable available core type for ``bench``."""
    row = matrix[bench]
    return max(cores, key=lambda c: row[c])


def best_ipts(
    matrix: IptMatrix, cores: Sequence[str]
) -> Dict[str, float]:
    """Each benchmark's IPT on its most suitable available core type."""
    _check(matrix, cores)
    return {
        bench: matrix[bench][preferred_core(matrix, bench, cores)]
        for bench in matrix
    }


def mean_ipt(matrix: IptMatrix, cores: Sequence[str]) -> float:
    """``avg``: arithmetic mean of the best-available IPTs."""
    return arithmetic_mean(best_ipts(matrix, cores).values())


def harmonic_ipt(matrix: IptMatrix, cores: Sequence[str]) -> float:
    """``har``: harmonic mean of the best-available IPTs — the figure of
    merit representing total execution time of the suite run one-by-one."""
    return harmonic_mean(best_ipts(matrix, cores).values())


def contention_weighted_harmonic_ipt(
    matrix: IptMatrix,
    cores: Sequence[str],
    weights: Optional[Mapping[str, float]] = None,
) -> float:
    """``cw-har``: contention-weighted harmonic-mean IPT (Section 6.1).

    Benchmarks are scheduled to their preferred core type even when busy
    (queueing); by Little's law the expected queue length at a core type is
    proportional to the number of benchmark types preferring it, so each
    benchmark's IPT is divided by that count before the harmonic mean.
    Optional ``weights`` model an uneven job-submission distribution.
    """
    _check(matrix, cores)
    prefs = {
        bench: preferred_core(matrix, bench, cores) for bench in matrix
    }
    if weights is None:
        sharers = Counter(prefs.values())
        load = {bench: sharers[prefs[bench]] for bench in matrix}
    else:
        share_weight: Counter = Counter()
        for bench, core in prefs.items():
            share_weight[core] += weights.get(bench, 1.0)
        load = {bench: share_weight[prefs[bench]] for bench in matrix}
    effective = [
        matrix[bench][prefs[bench]] / load[bench] for bench in matrix
    ]
    return harmonic_mean(effective)


#: Figure-of-merit registry keyed by the paper's names.
MERITS = {
    "avg": mean_ipt,
    "har": harmonic_ipt,
    "cw-har": contention_weighted_harmonic_ipt,
}


def design_merit(
    matrix: IptMatrix, cores: Sequence[str], merit: str
) -> float:
    """Score a set of core types under a named figure of merit."""
    try:
        fn = MERITS[merit]
    except KeyError:
        raise ValueError(
            f"unknown figure of merit {merit!r}; expected one of "
            f"{sorted(MERITS)}"
        ) from None
    return fn(matrix, cores)
