"""Declarative simulation jobs and their cache identity.

A *job* is a frozen, picklable description of one simulation — which trace,
which core configuration(s), which run knobs — decoupled from its
execution.  Jobs are the engine's unit of scheduling (an executor maps
``execute_job`` over them, possibly in worker processes) and of caching
(:meth:`~SimJob.cache_key` is a content hash of the core fingerprints, the
trace fingerprint, and every knob that can change the result).

Traces are referenced either **by value** (a concrete
:class:`~repro.isa.trace.Trace`, keyed by its content fingerprint) or **by
recipe** (a :class:`TraceSpec` — profile name, length, seed — keyed by the
recipe).  A spec is a few dozen bytes to pickle and is regenerated inside
the worker process, so parallel executors never ship full traces across
process boundaries; generation is bit-deterministic, so the recipe is a
sound cache identity.  The two forms hash into disjoint key spaces — a
spec-keyed entry is never aliased by a by-value trace or vice versa.

``SCHEMA_VERSION`` participates in every key: bump it whenever simulator or
trace-generator semantics change, and every persistent cache entry keyed
under the old behaviour is invalidated at once.
"""

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.regions import BASE_REGION, RegionLog, region_log
from repro.backend.base import CONCRETE_BACKENDS
from repro.core.system import ContestingSystem, ContestResult
from repro.corpus.registry import profile_key, resolve_profile
from repro.faults import FaultPlan
from repro.isa.generator import generate_trace
from repro.isa.stream import StreamingTrace
from repro.isa.trace import Trace
from repro.uarch.config import CoreConfig
from repro.uarch.run import StandaloneResult, run_standalone

#: Bump when a change to the simulator or the trace generator makes results
#: computed under the previous version stale.  Participates in every cache
#: key, so a bump invalidates the whole persistent store at once.
#: History: 2 — trace fingerprints moved to the streamable per-field
#: recipe (``repro-trace/2``) and spec keys to corpus-aware profile keys.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class TraceSpec:
    """A trace *recipe*: enough to regenerate the trace bit-identically.

    ``profile`` names either a legacy benchmark or a corpus workload
    (resolved through :func:`repro.corpus.registry.resolve_profile`);
    generation is deterministic in ``(profile, length, seed)``, so a spec
    is a sound — and tiny — stand-in for the trace it describes.

    ``stream=True`` resolves to a :class:`~repro.isa.stream.StreamingTrace`
    instead of a materialised :class:`~repro.isa.trace.Trace`: the
    simulation consumes generated regions through a bounded window, so the
    recipe's length is no longer capped by memory.  Streaming execution is
    bit-identical to materialised execution (pinned by ``tests/corpus``),
    but the flag still keys the cache — a key describes the requested
    computation, mirroring how the backend field is treated.
    """

    profile: str
    length: int
    seed: int = 11
    stream: bool = False

    def materialise(self) -> Trace:
        """Generate the described trace in full."""
        return generate_trace(
            resolve_profile(self.profile), self.length, seed=self.seed
        )

    def resolve(self) -> "AnyTrace":
        """The trace this spec describes, in its requested resident form."""
        if self.stream:
            return StreamingTrace(
                resolve_profile(self.profile), self.length, seed=self.seed
            )
        return self.materialise()

    def fingerprint(self) -> str:
        """Stable identity of the recipe (not of the generated content).

        Corpus profiles contribute their content hash through
        :func:`~repro.corpus.registry.profile_key`, so registry entries
        join the engine cache key without any schema change here.
        """
        key = f"spec/{profile_key(self.profile)}/{self.length}/{self.seed}"
        if self.stream:
            key += "/stream"
        return key


#: A concrete trace in either resident form.
AnyTrace = Union[Trace, StreamingTrace]

#: A trace by value or by recipe; every job accepts either.
TraceLike = Union[Trace, TraceSpec]


def trace_fingerprint(trace: TraceLike) -> str:
    """Cache identity of a :class:`Trace` or :class:`TraceSpec`.

    Concrete traces use their content hash (``trace/<sha256>``); specs use
    the recipe (``spec/...``).  The prefixes keep the two key spaces
    disjoint.
    """
    if isinstance(trace, TraceSpec):
        return trace.fingerprint()
    return f"trace/{trace.fingerprint()}"


#: Per-process memo of materialised specs, so a worker that receives many
#: jobs against the same spec generates the trace once.
_TRACE_MEMO: Dict[TraceSpec, Trace] = {}
_TRACE_MEMO_CAP = 32


def resolve_trace(trace: TraceLike) -> AnyTrace:
    """Resolve a :class:`TraceSpec` or pass a concrete trace through.

    Materialised specs are memoised per process (a worker receiving many
    jobs against one spec generates the trace once).  Streaming specs are
    *not* memoised: a :class:`~repro.isa.stream.StreamingTrace` is lazy —
    construction costs nothing — and sharing one across jobs would share
    its chunk window and restart accounting.
    """
    if not isinstance(trace, TraceSpec):
        return trace
    if trace.stream:
        return trace.resolve()
    if trace not in _TRACE_MEMO:
        if len(_TRACE_MEMO) >= _TRACE_MEMO_CAP:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[trace] = trace.materialise()
    return _TRACE_MEMO[trace]


def _digest(*parts: object) -> str:
    """Hash the repr of the parts (ints, floats, strs, bools, tuples —
    all with stable reprs) into a hex cache key."""
    payload = "\x1e".join(repr(p) for p in parts)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class StandaloneJob:
    """One trace to completion on one core (``repro.uarch.run``)."""

    config: CoreConfig
    trace: TraceLike
    region_size: int = 0
    prewarm: bool = True
    #: execution engine: ``"reference"`` or ``"columnar"``.  Jobs never
    #: carry ``"auto"`` — resolve it (``repro.backend.resolve_backend_name``)
    #: before constructing the job, so a cache key describes the requested
    #: computation, not what happened to be installed when it was built.
    backend: str = "reference"

    #: result-store record type
    kind = "standalone"

    def __post_init__(self) -> None:
        if self.backend not in CONCRETE_BACKENDS:
            raise ValueError(
                f"job backend must be concrete ({', '.join(CONCRETE_BACKENDS)}), "
                f"not {self.backend!r}"
            )

    def cache_key(self) -> str:
        """Content hash of config, trace and run knobs.

        The backend joins the key only when it is not the reference, so
        every pre-existing (reference) cache entry keeps its identity —
        and reference and columnar results never alias each other.
        """
        parts = (
            SCHEMA_VERSION, self.kind, self.config.fingerprint(),
            trace_fingerprint(self.trace), self.region_size, self.prewarm,
        )
        if self.backend != "reference":
            parts = parts + (("backend", self.backend),)
        return _digest(*parts)

    def run(self) -> StandaloneResult:
        """Execute the job in this process."""
        return run_standalone(
            self.config, resolve_trace(self.trace),
            region_size=self.region_size, prewarm=self.prewarm,
            backend=self.backend,
        )


@dataclass(frozen=True)
class RegionLogJob:
    """Per-region execution-time log of one trace on one core (the paper's
    Section-2 20-instruction logs)."""

    config: CoreConfig
    trace: TraceLike
    region_size: int = BASE_REGION

    kind = "region_log"

    def cache_key(self) -> str:
        """Content hash of config, trace and region size."""
        return _digest(
            SCHEMA_VERSION, self.kind, self.config.fingerprint(),
            trace_fingerprint(self.trace), self.region_size,
        )

    def run(self) -> RegionLog:
        """Execute the job in this process."""
        return region_log(
            self.config, resolve_trace(self.trace), self.region_size
        )


@dataclass(frozen=True)
class ContestJob:
    """N-way contested execution of one trace (``repro.core.system``)."""

    configs: Tuple[CoreConfig, ...]
    trace: TraceLike
    grb_latency_ns: float = 1.0
    max_lag: int = 0
    sat_grace_ns: float = 400.0
    lagger_policy: str = "disable"
    resync_penalty_cycles: int = 100
    #: optional fault-injection plan (see :mod:`repro.faults`)
    faults: Optional[FaultPlan] = None
    #: execution engine (``"reference"`` or ``"columnar"``; never
    #: ``"auto"`` — see :class:`StandaloneJob`).  Contested execution is
    #: outside the columnar capability today, so a columnar contest falls
    #: back to the reference engine deterministically — but the field still
    #: keys the cache, keeping the routing decision explicit and replayable.
    backend: str = "reference"

    kind = "contest"

    def __post_init__(self) -> None:
        if self.backend not in CONCRETE_BACKENDS:
            raise ValueError(
                f"job backend must be concrete ({', '.join(CONCRETE_BACKENDS)}), "
                f"not {self.backend!r}"
            )

    def cache_key(self) -> str:
        """Content hash of every config, the trace, and the contest knobs.

        A fault plan joins the key only when one is installed, and the
        backend only when it is not the reference, so every pre-existing
        cache entry keeps its identity.
        """
        parts = (
            SCHEMA_VERSION, self.kind,
            tuple(c.fingerprint() for c in self.configs),
            trace_fingerprint(self.trace), self.grb_latency_ns,
            self.max_lag, self.sat_grace_ns, self.lagger_policy,
            self.resync_penalty_cycles,
        )
        if self.faults is not None:
            parts = parts + (("faults", self.faults.fingerprint()),)
        if self.backend != "reference":
            parts = parts + (("backend", self.backend),)
        return _digest(*parts)

    def run(self) -> ContestResult:
        """Execute the job in this process."""
        system = ContestingSystem(
            list(self.configs), resolve_trace(self.trace),
            grb_latency_ns=self.grb_latency_ns, max_lag=self.max_lag,
            sat_grace_ns=self.sat_grace_ns, lagger_policy=self.lagger_policy,
            resync_penalty_cycles=self.resync_penalty_cycles,
            faults=self.faults, backend=self.backend,
        )
        return system.run()


#: Any of the three job variants.
SimJob = Union[StandaloneJob, RegionLogJob, ContestJob]

#: What each job kind computes, for store decoding.
RESULT_KINDS = ("standalone", "region_log", "contest")


def execute_job(job: SimJob) -> Tuple[object, float]:
    """Run one job and time it; the unit of work executors map over.

    Returns ``(result, wall_seconds)``.  Module-level so that
    ``ProcessPoolExecutor`` can pickle a reference to it.
    """
    started = time.perf_counter()
    result = job.run()
    return result, time.perf_counter() - started


def execute_jobs(jobs: List[SimJob]) -> List[Tuple[object, float]]:
    """Run a chunk of jobs in order (the batched form of
    :func:`execute_job`, used by executors to amortise pickling)."""
    return [execute_job(job) for job in jobs]
