"""Unified simulation engine: jobs, executors, layered result caching.

Everything that runs a simulation — experiment figures, the annealing
explorer, the CLI tools — goes through this package:

* :mod:`repro.engine.jobs` — declarative :data:`~repro.engine.jobs.SimJob`
  descriptions (standalone / region-log / contest) with content-hash cache
  keys,
* :mod:`repro.engine.executors` — a serial executor and a
  process-pool-backed parallel one, interchangeable and bit-identical,
* :mod:`repro.engine.store` — the persistent JSON-lines result store,
* :mod:`repro.engine.engine` — :class:`~repro.engine.engine.SimEngine`,
  which layers the in-memory cache and the store beneath an executor.

See ``docs/engine.md`` for the cache layout and invalidation rules.
"""

from repro.engine.engine import EngineStats, SimEngine
from repro.engine.executors import (
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    derive_chunk_size,
)
from repro.engine.failures import JobFailure
from repro.engine.jobs import (
    SCHEMA_VERSION,
    ContestJob,
    RegionLogJob,
    SimJob,
    StandaloneJob,
    TraceSpec,
    execute_job,
    trace_fingerprint,
)
from repro.engine.store import ResultStore, default_cache_dir

__all__ = [
    "SCHEMA_VERSION",
    "ContestJob",
    "EngineStats",
    "JobFailure",
    "ParallelExecutor",
    "RegionLogJob",
    "ResultStore",
    "RetryPolicy",
    "SerialExecutor",
    "derive_chunk_size",
    "SimEngine",
    "SimJob",
    "StandaloneJob",
    "TraceSpec",
    "default_cache_dir",
    "execute_job",
    "trace_fingerprint",
]
