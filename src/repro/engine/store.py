"""Persistent on-disk result store (JSON-lines, crash-consistent).

One record per line, CRC-framed since format 2::

    {"crc": <crc32>, "key": <hex>, "kind": <job kind>, "v": 2, "value": {...}}

``crc`` is a CRC32 over the canonical JSON form of the other four fields,
so every record is independently verifiable: a torn tail (crash
mid-append), a bit-flipped byte, or a hand-edited line is *detected* at
load — never served — and counted.  CRC32 catches all single- and
double-bit flips and any burst up to 32 bits; anything it misses still has
to parse as JSON with a valid shape.  The format is append-only — a crash
corrupts at most the final line — so the store degrades to a recompute,
never to a crash and never to a wrong result.  Layout on disk::

    <cache_dir>/results-v<SCHEMA_VERSION>.jsonl

The job-schema version is in the filename as well as in every key (see
:mod:`repro.engine.jobs`), so bumping it simply starts a fresh file and
leaves the stale one inert.  The *record framing* version rides inside
each record (``"v"``): unframed format-1 lines load fine (counted as
``legacy_lines``) and are upgraded in place by any compaction or by
``repro-store compact``.

Crash consistency (see ``docs/robustness.md``):

* **load** streams the file line by line (constant memory), verifies each
  frame, and counts every anomaly (``corrupt_lines``, ``crc_failures``,
  ``torn_tails``);
* an unterminated, unverifiable final line is a **torn tail**: it is
  auto-truncated (counted in ``torn_bytes_truncated``) under the store
  lock so the next append starts on a clean boundary;
* **append** first heals an unterminated tail with a newline
  (``tail_heals``) so a prior crash can never splice two records into one
  line, then issues a single ``O_APPEND`` ``write(2)``; with
  ``fsync=True`` the write is fsync'd before the fd closes;
* a failed append is **never silent**: it is counted in ``write_errors``,
  logged once per store, and surfaced through :meth:`counters`, the
  telemetry registry, and the run manifest.

Concurrency: appends are a single ``O_APPEND`` ``write(2)`` issued under
an advisory lock on a sibling ``.lock`` file, so two processes sharing a
store never interleave bytes *within* a line; compaction rewrites into a
per-pid temp file and atomically ``rename(2)``\\ s it into place under the
same lock.  On platforms without ``fcntl`` the lock degrades to nothing
and the single-write append remains the (practically sufficient) defence.

Capacity is bounded by ``max_entries``: inserting beyond it evicts the
oldest entries (insertion order) and compacts the file.  Offline
inspection and repair live in ``repro-store``
(:mod:`repro.engine.store_cli`): ``fsck`` / ``compact`` / ``stats``.

Fault injection: a :class:`~repro.chaos.engine.HarnessChaos` runtime
passed as ``chaos=`` may fail, tear, or bit-flip appends and crash the
process after a write — hoisted ``is not None`` hooks, zero cost when
absent.  ``tests/chaos`` pins that none of those faults can ever surface
as a wrong or half-read result.
"""

import dataclasses
import json
import logging
import os
import threading
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import (
    IO,
    Dict,
    Iterator,
    Optional,
    Tuple,
    TYPE_CHECKING,
    Union,
)

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

_log = logging.getLogger("repro.engine")

from repro.analysis.regions import RegionLog
from repro.core.system import ContestResult
from repro.engine.jobs import RESULT_KINDS, SCHEMA_VERSION
from repro.uarch.core import RunStats
from repro.uarch.run import StandaloneResult

if TYPE_CHECKING:  # chaos is an observer layer, never a load-bearing import
    from repro.chaos.engine import HarnessChaos

#: Default cache directory (override with $REPRO_CACHE_DIR or --cache-dir).
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: Record-framing format: 2 adds the per-record CRC32 frame.  Unframed
#: format-1 records are still read (and counted as ``legacy_lines``).
STORE_FORMAT = 2

#: Line-classification statuses produced by :func:`scan_store`.
STATUS_OK = "ok"
STATUS_LEGACY = "legacy"
STATUS_CRC = "crc-mismatch"
STATUS_CORRUPT = "corrupt"
STATUS_TORN = "torn"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    return Path(
        os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    ).expanduser()


def encode_result(result: object) -> dict:
    """Serialise a simulation result dataclass to a JSON-ready dict."""
    return dataclasses.asdict(result)


def decode_result(kind: str, payload: dict) -> object:
    """Reconstruct a result object from its JSON dict (inverse of
    :func:`encode_result`); raises on unknown kinds or bad shapes."""
    if kind == "standalone":
        data = dict(payload)
        data["stats"] = RunStats(**data["stats"])
        return StandaloneResult(**data)
    if kind == "region_log":
        return RegionLog(**payload)
    if kind == "contest":
        data = dict(payload)
        data["per_core"] = {
            name: RunStats(**stats)
            for name, stats in data["per_core"].items()
        }
        return ContestResult(**data)
    raise ValueError(f"unknown result kind {kind!r}")


# ---------------------------------------------------------------- framing


def _canonical_body(key: str, kind: str, value: dict) -> bytes:
    """The byte string the CRC covers: canonical JSON of the record body.

    ``json.dumps`` with sorted keys and tight separators round-trips
    exactly (ints are exact; floats use shortest-repr), so re-encoding a
    parsed record reproduces these bytes bit-for-bit.
    """
    return json.dumps(
        {"key": key, "kind": kind, "v": STORE_FORMAT, "value": value},
        sort_keys=True, separators=(",", ":"),
    ).encode()


def frame_record(key: str, kind: str, value: dict) -> bytes:
    """One framed, newline-terminated store line for a record."""
    crc = zlib.crc32(_canonical_body(key, kind, value))
    line = json.dumps(
        {"crc": crc, "key": key, "kind": kind, "v": STORE_FORMAT,
         "value": value},
        sort_keys=True, separators=(",", ":"),
    )
    return line.encode() + b"\n"


def classify_line(line: bytes) -> Tuple[str, str, str, dict]:
    """Classify one store line (newline already stripped).

    Returns ``(status, key, kind, value)``; for non-record statuses the
    key/kind/value slots are empty.  Statuses: :data:`STATUS_OK` (framed,
    CRC-verified), :data:`STATUS_LEGACY` (format-1, shape-valid),
    :data:`STATUS_CRC` (framed but the CRC disagrees), or
    :data:`STATUS_CORRUPT` (unparsable or a bad shape).
    """
    try:
        record = json.loads(line)
        key = record["key"]
        kind = record["kind"]
        value = record["value"]
        if not isinstance(record, dict) or not isinstance(key, str):
            raise TypeError("malformed record")
        if not isinstance(kind, str) or not isinstance(value, dict):
            raise TypeError("malformed record")
        if kind not in RESULT_KINDS:
            raise ValueError(f"unknown kind {kind!r}")
    except (json.JSONDecodeError, KeyError, TypeError, ValueError,
            UnicodeDecodeError):
        return STATUS_CORRUPT, "", "", {}
    if "crc" not in record:
        return STATUS_LEGACY, key, kind, value
    if record.get("v") != STORE_FORMAT or not isinstance(
        record["crc"], int
    ):
        return STATUS_CRC, key, kind, value
    if zlib.crc32(_canonical_body(key, kind, value)) != record["crc"]:
        return STATUS_CRC, key, kind, value
    return STATUS_OK, key, kind, value


@dataclasses.dataclass
class ScanRecord:
    """One classified line from :func:`scan_store`."""

    status: str
    key: str
    kind: str
    value: dict
    #: byte offset of the line start within the file
    start: int
    #: byte length of the raw line, newline included when present
    length: int
    #: whether the raw line ended with a newline
    terminated: bool


def scan_store(source: Union[str, Path, IO[bytes]]) -> Iterator[ScanRecord]:
    """Stream and classify every line of a store file.

    Reads line by line (memory stays O(longest line), never O(file)).
    An *unterminated* final line that fails verification is reported as
    :data:`STATUS_TORN` — the signature of a crash mid-append; an
    unterminated line that verifies is reported normally (only its
    newline is missing, which the next append heals).
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as fh:
            yield from scan_store(fh)
        return
    offset = 0
    for raw in source:
        start = offset
        offset += len(raw)
        terminated = raw.endswith(b"\n")
        line = raw.rstrip(b"\r\n")
        if not line.strip():
            continue
        status, key, kind, value = classify_line(line)
        if not terminated and status not in (STATUS_OK, STATUS_LEGACY):
            status = STATUS_TORN
        yield ScanRecord(
            status=status, key=key, kind=kind, value=value,
            start=start, length=len(raw), terminated=terminated,
        )


class ResultStore:
    """Append-only persistent cache of simulation results.

    Parameters
    ----------
    path:
        The cache *directory* (the JSON-lines file name is derived from the
        schema version) or a path ending in ``.jsonl`` to use verbatim.
    max_entries:
        Capacity bound; inserting beyond it evicts oldest-first and
        compacts the file.
    fsync:
        When True, every append (and compaction) is ``fsync``'d before its
        fd closes — the record survives an OS crash, not just a process
        crash.  Off by default: a lost cache entry is only a recompute.
    chaos:
        Optional :class:`~repro.chaos.engine.HarnessChaos` fault injector
        for the write path (tests); ``None`` takes none of those branches.
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        max_entries: int = 100_000,
        fsync: bool = False,
        chaos: Optional["HarnessChaos"] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        base = Path(path).expanduser() if path else default_cache_dir()
        if base.suffix == ".jsonl":
            self.path = base
        else:
            self.path = base / f"results-v{SCHEMA_VERSION}.jsonl"
        self.max_entries = max_entries
        self.fsync = fsync
        self._chaos = chaos
        self._lock_path = self.path.with_name(self.path.name + ".lock")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: lines skipped at load/decode because they were corrupt,
        #: truncated, or CRC-invalid (umbrella counter; the finer-grained
        #: ones below partition its load-time component)
        self.corrupt_lines = 0
        #: framed records whose CRC32 did not match their body
        self.crc_failures = 0
        #: unframed format-1 records accepted at load
        self.legacy_lines = 0
        #: torn (unterminated, unverifiable) tails found at load
        self.torn_tails = 0
        #: bytes removed by torn-tail auto-truncation
        self.torn_bytes_truncated = 0
        #: unterminated tails healed with a newline before an append
        self.tail_heals = 0
        #: appends that failed with OSError (counted, logged once, never
        #: silent — the record stays in memory and is recomputed next run)
        self.write_errors = 0
        self._write_error_logged = False
        self._entries: Dict[str, dict] = {}
        #: serialises the in-memory view (entries dict + cache counters)
        #: across threads — the service reads on its event loop while the
        #: batcher thread runs the engine.  The flock covers file *bytes*
        #: across processes; this lock covers *memory* within one.  Never
        #: held across file I/O.
        self._mu = threading.Lock()
        self._load()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------- load

    def _load(self) -> None:
        torn: Optional[ScanRecord] = None
        try:
            with open(self.path, "rb") as fh:
                # streamed, line-buffered: RSS stays flat however large
                # the store grew (benchmarks/test_store_load.py guards
                # the cost; tests pin that the whole-file read is gone)
                for record in scan_store(fh):
                    torn = None
                    if record.status in (STATUS_OK, STATUS_LEGACY):
                        if record.status == STATUS_LEGACY:
                            self.legacy_lines += 1
                        # later lines win: appends supersede older records
                        self._entries[record.key] = {
                            "kind": record.kind, "value": record.value,
                        }
                        continue
                    self.corrupt_lines += 1
                    if record.status == STATUS_CRC:
                        self.crc_failures += 1
                    elif record.status == STATUS_TORN:
                        self.torn_tails += 1
                        torn = record
        except FileNotFoundError:
            return
        except OSError as exc:
            _log.warning("cannot read result store %s: %s", self.path, exc)
            return
        if torn is not None:
            self._truncate_torn(torn)
        self._evict_to_capacity(rewrite=False)

    def _truncate_torn(self, torn: ScanRecord) -> None:
        """Cut a torn tail off the file so appends restart on a clean
        boundary.  Skipped (harmlessly) if another writer extended the
        file since we scanned it — their append-side tail healing already
        isolated the torn bytes on their own line."""
        expected_end = torn.start + torn.length
        try:
            with self._locked():
                fd = os.open(self.path, os.O_RDWR)
                try:
                    if os.fstat(fd).st_size != expected_end:
                        return
                    os.ftruncate(fd, torn.start)
                finally:
                    os.close(fd)
        except OSError as exc:
            _log.warning(
                "could not truncate torn tail of %s: %s", self.path, exc
            )
            return
        self.torn_bytes_truncated += torn.length
        _log.warning(
            "truncated a torn %d-byte tail from %s (crash mid-append)",
            torn.length, self.path,
        )

    # -------------------------------------------------------- get / put

    def get(self, key: str, kind: str) -> Optional[object]:
        """Look up and decode a result; ``None`` (a miss) on absence, kind
        mismatch, or an undecodable payload."""
        with self._mu:
            record = self._entries.get(key)
            if record is None or record["kind"] != kind:
                self.misses += 1
                return None
            try:
                result = decode_result(kind, record["value"])
            except (TypeError, KeyError, ValueError):
                # stale shape from an older code version: treat as a miss
                del self._entries[key]
                self.corrupt_lines += 1
                self.misses += 1
                return None
            self.hits += 1
        return result

    def put(self, key: str, kind: str, result: object) -> None:
        """Insert (or supersede) a result and append it to the file."""
        record = {"kind": kind, "value": encode_result(result)}
        with self._mu:
            self._entries[key] = record
            over_capacity = len(self._entries) > self.max_entries
        if over_capacity:
            self._evict_to_capacity(rewrite=True)
            return
        data = frame_record(key, kind, record["value"])
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._locked():
                # one O_APPEND write(2) per record: concurrent appenders
                # may interleave *lines*, never bytes within a line
                fd = os.open(
                    self.path, os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644
                )
                try:
                    self._heal_tail(fd)
                    if self._chaos is not None:
                        data = self._chaos.store_write_bytes(data)
                    os.write(fd, data)
                    if self.fsync:
                        os.fsync(fd)
                finally:
                    os.close(fd)
        except OSError as exc:
            self._count_write_error(exc)
        if self._chaos is not None:
            self._chaos.after_store_write()

    def _heal_tail(self, fd: int) -> None:
        """Terminate a torn tail before appending after it.

        A crash mid-append can leave the file without a final newline; an
        ``O_APPEND`` write landing straight after it would splice two
        records into one unparsable line, losing the *new* record too.
        One ``pread`` of the final byte prevents that for good.
        """
        if not hasattr(os, "pread"):  # pragma: no cover - non-POSIX
            return
        size = os.fstat(fd).st_size
        if size == 0:
            return
        if os.pread(fd, 1, size - 1) != b"\n":
            os.write(fd, b"\n")
            self.tail_heals += 1

    def _count_write_error(self, exc: OSError) -> None:
        self.write_errors += 1
        if not self._write_error_logged:
            self._write_error_logged = True
            _log.warning(
                "result store %s append failed (%s); counting under "
                "write_errors and continuing as a process-lifetime cache",
                self.path, exc,
            )

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold the store's advisory file lock (no-op without ``fcntl``)."""
        if fcntl is None:
            yield
            return
        try:
            fd = os.open(
                self._lock_path, os.O_CREAT | os.O_RDWR, 0o644
            )
        except OSError:
            yield  # unlockable filesystem: fall back to the atomic write
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    # --------------------------------------------------- evict / rewrite

    def _evict_to_capacity(self, rewrite: bool) -> None:
        evicted = 0
        with self._mu:
            while len(self._entries) > self.max_entries:
                self._entries.pop(next(iter(self._entries)))
                evicted += 1
            self.evictions += evicted
        if rewrite and evicted:
            self._rewrite()

    def _rewrite(self) -> None:
        """Compact: rewrite the file from the in-memory view (later-lines
        -win already applied, corrupt lines dropped, legacy records
        re-framed), then atomically rename into place."""
        with self._mu:
            # snapshot under the lock so a concurrent get() (which can
            # drop stale entries) never tears the iteration
            items = list(self._entries.items())
        payload = b"".join(
            frame_record(k, r["kind"], r["value"]) for k, r in items
        )
        # per-pid temp name + atomic rename: a concurrent reader sees
        # either the old file or the new one, never a half-written mix
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._locked():
                fd = os.open(
                    tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
                )
                try:
                    os.write(fd, payload)
                    if self.fsync:
                        os.fsync(fd)
                finally:
                    os.close(fd)
                tmp.replace(self.path)
            _log.debug(
                "compacted %s to %d entries", self.path, len(self._entries)
            )
        except OSError as exc:
            self._count_write_error(exc)
            try:
                tmp.unlink()
            except OSError:
                _log.debug("compaction temp file %s already gone", tmp)

    # ----------------------------------------------------- metrics / API

    @property
    def metrics_path(self) -> Path:
        """The metrics sidecar file next to the result store."""
        return self.path.with_name(self.path.stem + ".metrics.jsonl")

    def append_metrics(self, record: Dict[str, object]) -> None:
        """Append one telemetry metrics record to the metrics sidecar.

        Same durability contract as :meth:`put`: one ``O_APPEND``
        ``write(2)`` under the store's advisory lock; a failed append is
        counted in ``write_errors`` (and logged once), never swallowed.
        Records are typically
        :func:`repro.telemetry.metrics.metrics_snapshot` dicts.
        """
        data = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._locked():
                fd = os.open(
                    self.metrics_path,
                    os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644,
                )
                try:
                    os.write(fd, data)
                    if self.fsync:
                        os.fsync(fd)
                finally:
                    os.close(fd)
        except OSError as exc:
            self._count_write_error(exc)

    def counters(self) -> Dict[str, int]:
        """Cache and integrity counters as a plain dict.

        Everything here flows into the runner's telemetry registry
        (``store.*`` stats) and the run manifest (``store_*`` entries in
        ``engine_stats``), so a silent-drop regression is visible in
        every provenance artefact.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt_lines": self.corrupt_lines,
            "crc_failures": self.crc_failures,
            "legacy_lines": self.legacy_lines,
            "torn_tails": self.torn_tails,
            "torn_bytes_truncated": self.torn_bytes_truncated,
            "tail_heals": self.tail_heals,
            "write_errors": self.write_errors,
            "entries": len(self._entries),
        }
