"""Persistent on-disk result store (JSON-lines, corruption-tolerant).

One record per line: ``{"key": <hex>, "kind": <job kind>, "value": {...}}``.
The format is append-only — a crash mid-write corrupts at most the final
line, and loading skips anything unparsable — so the store degrades to a
recompute, never to a crash.  Layout on disk::

    <cache_dir>/results-v<SCHEMA_VERSION>.jsonl

The schema version is in the filename as well as in every key (see
:mod:`repro.engine.jobs`), so bumping it simply starts a fresh file and
leaves the stale one inert.

Concurrency: appends are a single ``O_APPEND`` ``write(2)`` issued under
an advisory lock on a sibling ``.lock`` file, so two processes sharing a
store never interleave bytes *within* a line; compaction rewrites into a
per-pid temp file and atomically ``rename(2)``\\ s it into place under the
same lock.  On platforms without ``fcntl`` the lock degrades to nothing
and the single-write append remains the (practically sufficient) defence.

Capacity is bounded by ``max_entries``: inserting beyond it evicts the
oldest entries (insertion order) and compacts the file.  Hit/miss/eviction
counters accumulate on the instance and are surfaced by the engine.
"""

import dataclasses
import json
import logging
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

_log = logging.getLogger("repro.engine")

from repro.analysis.regions import RegionLog
from repro.core.system import ContestResult
from repro.engine.jobs import SCHEMA_VERSION
from repro.uarch.core import RunStats
from repro.uarch.run import StandaloneResult

#: Default cache directory (override with $REPRO_CACHE_DIR or --cache-dir).
DEFAULT_CACHE_DIR = "~/.cache/repro"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    return Path(
        os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    ).expanduser()


def encode_result(result: object) -> dict:
    """Serialise a simulation result dataclass to a JSON-ready dict."""
    return dataclasses.asdict(result)


def decode_result(kind: str, payload: dict) -> object:
    """Reconstruct a result object from its JSON dict (inverse of
    :func:`encode_result`); raises on unknown kinds or bad shapes."""
    if kind == "standalone":
        data = dict(payload)
        data["stats"] = RunStats(**data["stats"])
        return StandaloneResult(**data)
    if kind == "region_log":
        return RegionLog(**payload)
    if kind == "contest":
        data = dict(payload)
        data["per_core"] = {
            name: RunStats(**stats)
            for name, stats in data["per_core"].items()
        }
        return ContestResult(**data)
    raise ValueError(f"unknown result kind {kind!r}")


class ResultStore:
    """Append-only persistent cache of simulation results.

    Parameters
    ----------
    path:
        The cache *directory* (the JSON-lines file name is derived from the
        schema version) or a path ending in ``.jsonl`` to use verbatim.
    max_entries:
        Capacity bound; inserting beyond it evicts oldest-first and
        compacts the file.
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        max_entries: int = 100_000,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        base = Path(path).expanduser() if path else default_cache_dir()
        if base.suffix == ".jsonl":
            self.path = base
        else:
            self.path = base / f"results-v{SCHEMA_VERSION}.jsonl"
        self.max_entries = max_entries
        self._lock_path = self.path.with_name(self.path.name + ".lock")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: lines skipped at load because they were corrupt or truncated
        self.corrupt_lines = 0
        self._entries: Dict[str, dict] = {}
        self._load()

    def __len__(self) -> int:
        return len(self._entries)

    def _load(self) -> None:
        try:
            raw = self.path.read_bytes()
        except (FileNotFoundError, OSError):
            return
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                kind = record["kind"]
                value = record["value"]
                if not isinstance(key, str) or not isinstance(value, dict):
                    raise TypeError("malformed record")
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                self.corrupt_lines += 1
                continue
            # later lines win, as appends supersede older records
            self._entries[key] = {"kind": kind, "value": value}
        self._evict_to_capacity(rewrite=False)

    def get(self, key: str, kind: str) -> Optional[object]:
        """Look up and decode a result; ``None`` (a miss) on absence, kind
        mismatch, or an undecodable payload."""
        record = self._entries.get(key)
        if record is None or record["kind"] != kind:
            self.misses += 1
            return None
        try:
            result = decode_result(kind, record["value"])
        except (TypeError, KeyError, ValueError):
            # stale shape from an older code version: treat as a miss
            del self._entries[key]
            self.corrupt_lines += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, kind: str, result: object) -> None:
        """Insert (or supersede) a result and append it to the file."""
        record = {"kind": kind, "value": encode_result(result)}
        self._entries[key] = record
        if len(self._entries) > self.max_entries:
            self._evict_to_capacity(rewrite=True)
            return
        line = json.dumps(
            {"key": key, "kind": kind, "value": record["value"]},
            separators=(",", ":"),
        )
        data = (line + "\n").encode()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._locked():
                # one O_APPEND write(2) per record: concurrent appenders
                # may interleave *lines*, never bytes within a line
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
                )
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
        except OSError:
            pass  # read-only filesystem: stay a process-lifetime cache

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold the store's advisory file lock (no-op without ``fcntl``)."""
        if fcntl is None:
            yield
            return
        try:
            fd = os.open(
                self._lock_path, os.O_CREAT | os.O_RDWR, 0o644
            )
        except OSError:
            yield  # unlockable filesystem: fall back to the atomic write
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def _evict_to_capacity(self, rewrite: bool) -> None:
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))
            evicted += 1
        self.evictions += evicted
        if rewrite and evicted:
            self._rewrite()

    def _rewrite(self) -> None:
        lines = [
            json.dumps(
                {"key": k, "kind": r["kind"], "value": r["value"]},
                separators=(",", ":"),
            )
            for k, r in self._entries.items()
        ]
        # per-pid temp name + atomic rename: a concurrent reader sees
        # either the old file or the new one, never a half-written mix
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._locked():
                tmp.write_text("\n".join(lines) + ("\n" if lines else ""))
                tmp.replace(self.path)
            _log.debug(
                "compacted %s to %d entries", self.path, len(lines)
            )
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    @property
    def metrics_path(self) -> Path:
        """The metrics sidecar file next to the result store."""
        return self.path.with_name(self.path.stem + ".metrics.jsonl")

    def append_metrics(self, record: Dict[str, object]) -> None:
        """Append one telemetry metrics record to the metrics sidecar.

        Same durability contract as :meth:`put`: one ``O_APPEND``
        ``write(2)`` under the store's advisory lock, and a read-only
        filesystem degrades to a silent no-op.  Records are typically
        :func:`repro.telemetry.metrics.metrics_snapshot` dicts.
        """
        data = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._locked():
                fd = os.open(
                    self.metrics_path,
                    os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644,
                )
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
        except OSError:
            pass

    def counters(self) -> Dict[str, int]:
        """Hit/miss/eviction/corruption counters as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt_lines": self.corrupt_lines,
            "entries": len(self._entries),
        }
