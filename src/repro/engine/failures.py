"""Failure reporting for the execution layer.

A job that cannot be completed — its worker raised, was killed, or exceeded
its wall-clock budget after every retry the policy allows — resolves to a
:class:`JobFailure` *result* instead of aborting the whole batch.  Failures
flow back through the executor in submission order exactly like successes,
so ``run(jobs)`` always returns one entry per job; the engine reports them
(``stats.failures``) and never caches them, so a later run retries.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class JobFailure:
    """Terminal outcome of a job the execution layer could not complete.

    Attributes
    ----------
    job_kind:
        The failed job's ``kind`` (``standalone`` / ``contest`` / ...).
    error_type:
        Exception class name, or a synthetic cause: ``WorkerDied`` (the
        worker process vanished mid-chunk, e.g. OOM-killed) or
        ``JobTimeout`` (exceeded the retry policy's per-job budget).
    message:
        Human-readable detail.
    traceback:
        Formatted traceback when the failure was a raised exception
        (empty for worker deaths and timeouts — there is no Python frame).
    attempts:
        How many executions were attempted before giving up.
    """

    job_kind: str
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1

    #: result-record type, mirroring SimJob.kind on success results
    kind = "failure"

    def __str__(self) -> str:
        return (
            f"JobFailure({self.job_kind}: {self.error_type}: {self.message}; "
            f"{self.attempts} attempt(s))"
        )


def job_kind(job: object) -> str:
    """The job's ``kind`` attribute, tolerating non-SimJob duck types."""
    return getattr(job, "kind", type(job).__name__)
