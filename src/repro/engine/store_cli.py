"""``repro-store`` — offline inspection and repair of a result store.

Subcommands (see ``docs/robustness.md`` for the on-disk format):

``fsck``
    Stream-scan the store file and report every line's classification
    (ok / legacy / crc-mismatch / corrupt / torn).  With ``--repair``,
    rewrite the file keeping only verifiable records: torn tails are
    truncated, corrupt and CRC-failing lines dropped, legacy format-1
    records re-framed with a CRC.  Exits 0 when the file is clean (or
    was repaired), 1 when issues were found and left in place.

``compact``
    Deduplicate (later lines win), drop anything unverifiable, re-frame
    legacy records, and atomically rewrite the file.

``stats``
    Print entry/byte counts, per-kind totals, and the load-time
    integrity counters as JSON.

The store file is located exactly as :class:`~repro.engine.store.ResultStore`
does: ``--path`` names the file (``*.jsonl``) or its directory; otherwise
``--cache-dir``, ``$REPRO_CACHE_DIR``, or ``~/.cache/repro``.
"""

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.engine.jobs import SCHEMA_VERSION
from repro.engine.store import (
    STATUS_LEGACY,
    STATUS_OK,
    ResultStore,
    default_cache_dir,
    scan_store,
)

#: fsck statuses that indicate a line needing repair
_ISSUE_STATUSES = ("crc-mismatch", "corrupt", "torn")


def resolve_store_path(
    path: Optional[str], cache_dir: Optional[str]
) -> Path:
    """The store file a CLI invocation refers to."""
    if path is not None:
        p = Path(path).expanduser()
        if p.suffix == ".jsonl":
            return p
        return p / f"results-v{SCHEMA_VERSION}.jsonl"
    if cache_dir is not None:
        return (
            Path(cache_dir).expanduser() / f"results-v{SCHEMA_VERSION}.jsonl"
        )
    return default_cache_dir() / f"results-v{SCHEMA_VERSION}.jsonl"


def _scan_summary(path: Path) -> Dict[str, int]:
    """Counts per classification status for one store file."""
    counts: Counter[str] = Counter()
    for record in scan_store(path):
        counts[record.status] += 1
    return dict(counts)


def cmd_fsck(path: Path, repair: bool) -> int:
    """Verify (and optionally repair) one store file."""
    if not path.exists():
        print(f"repro-store fsck: {path}: no store file (clean)")
        return 0
    counts = _scan_summary(path)
    total = sum(counts.values())
    issues = sum(counts.get(status, 0) for status in _ISSUE_STATUSES)
    print(f"repro-store fsck: {path}")
    print(f"  lines: {total}")
    for status in (STATUS_OK, STATUS_LEGACY) + _ISSUE_STATUSES:
        if counts.get(status):
            print(f"  {status}: {counts[status]}")
    if issues == 0 and not counts.get(STATUS_LEGACY):
        print("  clean")
        return 0
    if not repair:
        if issues:
            print(f"  {issues} issue(s) found; rerun with --repair")
            return 1
        print("  legacy records present; rerun with --repair to re-frame")
        return 0
    # Loading truncates a torn tail and drops unverifiable lines; the
    # rewrite re-frames what survives and drops the rest from disk.
    store = ResultStore(path)
    store._rewrite()
    after = _scan_summary(path) if path.exists() else {}
    remaining = sum(after.get(status, 0) for status in _ISSUE_STATUSES)
    print(
        f"  repaired: kept {len(store)} record(s), dropped "
        f"{issues} bad line(s), re-framed "
        f"{counts.get(STATUS_LEGACY, 0)} legacy line(s)"
    )
    if store.write_errors:
        print(f"  repair hit {store.write_errors} write error(s)")
        return 1
    return 0 if remaining == 0 else 1


def cmd_compact(path: Path) -> int:
    """Deduplicate and rewrite one store file in framed form."""
    if not path.exists():
        print(f"repro-store compact: {path}: no store file")
        return 0
    before = path.stat().st_size
    store = ResultStore(path)
    store._rewrite()
    if store.write_errors:
        print(f"repro-store compact: {path}: rewrite failed")
        return 1
    after = path.stat().st_size
    print(
        f"repro-store compact: {path}: {len(store)} entries, "
        f"{before} -> {after} bytes"
    )
    return 0


def cmd_stats(path: Path) -> int:
    """Print store statistics as JSON."""
    if not path.exists():
        print(json.dumps({"path": str(path), "exists": False}, indent=2))
        return 0
    kinds: Counter[str] = Counter()
    statuses: Counter[str] = Counter()
    keys: Set[str] = set()
    for record in scan_store(path):
        statuses[record.status] += 1
        if record.status in (STATUS_OK, STATUS_LEGACY):
            kinds[record.kind] += 1
            keys.add(record.key)
    print(
        json.dumps(
            {
                "path": str(path),
                "exists": True,
                "bytes": path.stat().st_size,
                "lines": sum(statuses.values()),
                "unique_keys": len(keys),
                "by_status": dict(statuses),
                "by_kind": dict(kinds),
            },
            indent=2, sort_keys=True,
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (the ``repro-store`` console script)."""
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Inspect and repair a repro result store.",
    )
    parser.add_argument(
        "--path",
        help="store file (*.jsonl) or its directory "
        "(default: the cache directory)",
    )
    parser.add_argument(
        "--cache-dir",
        help="cache directory holding results-v<N>.jsonl "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    fsck = sub.add_parser("fsck", help="verify record framing and CRCs")
    fsck.add_argument(
        "--repair", action="store_true",
        help="rewrite the file keeping only verifiable records",
    )
    sub.add_parser("compact", help="deduplicate and rewrite the store")
    sub.add_parser("stats", help="print store statistics as JSON")
    args = parser.parse_args(argv)
    path = resolve_store_path(args.path, args.cache_dir)
    if args.command == "fsck":
        return cmd_fsck(path, repair=args.repair)
    if args.command == "compact":
        return cmd_compact(path)
    return cmd_stats(path)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
