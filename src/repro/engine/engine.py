"""The simulation engine: layered caching over pluggable executors.

``SimEngine.run_many`` resolves a batch of jobs through three layers:

1. **in-memory cache** — a per-engine dict keyed by
   :meth:`~repro.engine.jobs.StandaloneJob.cache_key`; hits return the
   *same object* (call sites may rely on identity),
2. **persistent store** — the optional on-disk
   :class:`~repro.engine.store.ResultStore`, surviving across processes,
3. **executor** — remaining misses are deduplicated by key and submitted
   to the executor in one batch, so a ``ParallelExecutor`` sees the whole
   frontier at once.

Counters (memory/store hits, misses, simulated seconds) accumulate on
``engine.stats`` and render via :meth:`SimEngine.stats_line` — experiment
runners print this to stderr so rendered experiment output stays
byte-identical with and without caching.
"""

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.engine.executors import ParallelExecutor, SerialExecutor
from repro.engine.failures import JobFailure
from repro.engine.jobs import SimJob
from repro.engine.store import ResultStore

_log = logging.getLogger("repro.engine")


@dataclass
class EngineStats:
    """Cache and execution counters for one engine."""

    memory_hits: int = 0
    store_hits: int = 0
    misses: int = 0
    #: jobs that resolved to a JobFailure (never cached; retried next run)
    failures: int = 0
    #: wall seconds spent inside simulations (sum over jobs; under a
    #: parallel executor this exceeds elapsed time)
    sim_seconds: float = 0.0
    #: per-kind executed-job counts, e.g. {"standalone": 12}
    executed: Dict[str, int] = field(default_factory=dict)

    @property
    def jobs(self) -> int:
        """Total jobs resolved through the engine."""
        return self.memory_hits + self.store_hits + self.misses


class SimEngine:
    """Resolve simulation jobs through caches and an executor.

    Parameters
    ----------
    executor:
        A :class:`~repro.engine.executors.SerialExecutor` (default) or
        :class:`~repro.engine.executors.ParallelExecutor`.
    store:
        Optional persistent :class:`~repro.engine.store.ResultStore`;
        ``None`` keeps caching in-memory only.
    """

    def __init__(
        self,
        executor: Optional[Union[SerialExecutor, ParallelExecutor]] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        self.executor = executor or SerialExecutor()
        self.store = store
        self.stats = EngineStats()
        self._memory: Dict[str, object] = {}

    def run(self, job: SimJob) -> object:
        """Resolve one job (see :meth:`run_many`)."""
        return self.run_many([job])[0]

    def run_many(self, jobs: Sequence[SimJob]) -> List[object]:
        """Resolve a batch of jobs; results come back in submission order.

        Misses are deduplicated by cache key before execution, so a batch
        that mentions the same simulation twice runs it once.
        """
        jobs = list(jobs)
        results: List[object] = [None] * len(jobs)
        pending: Dict[str, List[int]] = {}
        pending_jobs: Dict[str, SimJob] = {}
        for i, job in enumerate(jobs):
            key = job.cache_key()
            if key in self._memory:
                self.stats.memory_hits += 1
                results[i] = self._memory[key]
                continue
            if key in pending:  # duplicate within this batch
                self.stats.memory_hits += 1
                pending[key].append(i)
                continue
            if self.store is not None:
                cached = self.store.get(key, job.kind)
                if cached is not None:
                    self.stats.store_hits += 1
                    self._memory[key] = cached
                    results[i] = cached
                    continue
            self.stats.misses += 1
            pending[key] = [i]
            pending_jobs[key] = job

        if pending:
            order = list(pending)
            timed = self.executor.run([pending_jobs[k] for k in order])
            for key, (result, seconds) in zip(order, timed):
                self.stats.sim_seconds += seconds
                kind = pending_jobs[key].kind
                self.stats.executed[kind] = (
                    self.stats.executed.get(kind, 0) + 1
                )
                if isinstance(result, JobFailure):
                    # failures are reported, never cached — a later run
                    # (or a fixed environment) retries the simulation
                    self.stats.failures += 1
                    _log.warning("%s job failed: %s", kind, result)
                    for i in pending[key]:
                        results[i] = result
                    continue
                self._memory[key] = result
                if self.store is not None:
                    self.store.put(key, kind, result)
                for i in pending[key]:
                    results[i] = result
        return results

    def stats_line(self) -> str:
        """One-line human-readable counter summary."""
        s = self.stats
        parts = [
            f"{s.jobs} jobs",
            f"{s.memory_hits} memory hits",
            f"{s.store_hits} store hits",
            f"{s.misses} misses",
            f"{s.sim_seconds:.1f}s simulated",
            f"{self.executor.workers} worker(s)",
        ]
        if s.failures:
            parts.insert(4, f"{s.failures} FAILED")
        if self.store is not None:
            c = self.store.counters()
            parts.append(
                f"store: {c['entries']} entries, "
                f"{c['evictions']} evictions ({self.store.path})"
            )
        return "[engine] " + ", ".join(parts)
