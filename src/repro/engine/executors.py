"""Job executors: serial in-process, or fanned out over worker processes.

Both executors implement one method — ``run(jobs) -> [(result, seconds)]``
with results in submission order — so the engine is indifferent to where
jobs execute.  Simulations are deterministic pure functions of their job,
so the two executors return bit-identical results on the success path
(asserted in ``tests/engine/test_executors.py``); parallelism changes
wall-clock time only.

The parallel executor ships jobs, not traces: jobs built on a
:class:`~repro.engine.jobs.TraceSpec` pickle to a few hundred bytes and
the worker regenerates (and memoises) the trace locally.  Jobs are batched
into chunks so per-task IPC overhead amortises across many short
simulations.

Fault tolerance (see ``docs/engine.md``): the parallel executor submits
each chunk as its own future and survives every per-job failure mode —

* a job that **raises** is captured in the worker and retried under the
  :class:`RetryPolicy` (bounded attempts, exponential backoff + seeded
  jitter), with a final in-process serial attempt before it is reported
  as a :class:`~repro.engine.failures.JobFailure`;
* a worker that **dies** (OOM kill, segfault) breaks the process pool; the
  pool is respawned and only the lost chunks re-run.  A break in full
  parallelism is unattributable (every in-flight future reports
  ``BrokenProcessPool``), so lost chunks re-run with no attempt spent and
  the executor drops into *quarantine*: one chunk in flight at a time,
  where a break is definitively that chunk's fault — it is split to
  isolate the poisoned job, whose attempts then burn down to a failure
  while its innocent chunk-mates complete;
* a job that **hangs** past ``job_timeout_s`` is detected by a watchdog
  that kills the workers (a hung worker cannot be cancelled) and respawns
  the pool; the timed-out job spends an attempt and is retried under the
  same policy — only exhausting ``max_attempts`` reports a ``JobTimeout``
  failure (multi-job chunks are first split to attribute the overrun);
  chunks lost as collateral re-run without spending an attempt;
* if the pool cannot be (re)created at all, everything left degrades to a
  guarded serial run in the calling process.

A batch therefore always returns one entry per job: failed jobs as
``JobFailure`` results, successes intact and bit-identical to serial.
"""

import logging
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from random import Random
from typing import (
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.chaos.hooks import Action, apply_action
from repro.engine.failures import JobFailure, job_kind
from repro.engine.jobs import SimJob, execute_job
from repro.util.rng import substream

if TYPE_CHECKING:  # the chaos runtime is an optional observer, typing only
    from repro.chaos.engine import HarnessChaos

_log = logging.getLogger("repro.engine")

#: watchdog / completion poll interval (seconds)
_POLL_S = 0.05


def derive_chunk_size(n_jobs: int, workers: int, requested: int = 0) -> int:
    """Jobs per worker task.

    ``requested`` wins when non-zero.  Otherwise aim for ~4 chunks per
    worker so stragglers load-balance — but never fragment a small batch
    into 1-job chunks when fewer, larger chunks give the same makespan:
    with ``workers < n_jobs <= 4 * workers`` the naive ``ceil(n / 4w)``
    is 1 (maximum per-task IPC overhead) while one chunk per worker keeps
    every worker exactly as busy with a fraction of the round trips.
    """
    if n_jobs < 1 or workers < 1:
        raise ValueError("n_jobs and workers must be >= 1")
    if requested:
        return requested
    size = -(-n_jobs // (4 * workers))
    if size == 1 and n_jobs > workers:
        size = -(-n_jobs // workers)
    return size


def _run_chunk(
    jobs: List[SimJob],
    actions: Optional[Tuple[Optional["Action"], ...]] = None,
) -> List[Tuple[object, ...]]:
    """Worker-side chunk runner with per-job exception capture.

    Returns one outcome per job, in order: ``("ok", result, seconds)`` or
    ``("err", type_name, message, formatted_traceback, seconds)``.  A
    raising job therefore never poisons its chunk-mates; only a death of
    the worker process itself (OOM, SIGKILL) loses the chunk.

    ``actions`` is the chaos side-channel (``ParallelExecutor(chaos=...)``):
    one optional directive per job slot, applied blindly before that job
    runs — the parent makes every injection decision, workers hold no
    chaos state (:mod:`repro.chaos.hooks`).  ``None`` (the invariable
    production value) skips the branch entirely.
    """
    out: List[Tuple[object, ...]] = []
    for slot, job in enumerate(jobs):
        action = actions[slot] if actions is not None else None
        started = time.perf_counter()
        try:
            if action is not None:
                apply_action(action)
            result = job.run()
        except Exception as exc:
            out.append((
                "err", type(exc).__name__, str(exc),
                traceback.format_exc(), time.perf_counter() - started,
            ))
        else:
            out.append(("ok", result, time.perf_counter() - started))
    return out


def _guarded_execute(job: SimJob, attempts: int = 1) -> Tuple[object, float]:
    """Run a job in-process, converting an exception into a JobFailure."""
    started = time.perf_counter()
    try:
        return execute_job(job)
    except Exception as exc:
        return (
            JobFailure(
                job_kind=job_kind(job),
                error_type=type(exc).__name__,
                message=str(exc),
                traceback=traceback.format_exc(),
                attempts=attempts,
            ),
            time.perf_counter() - started,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy for the parallel executor.

    Parameters
    ----------
    max_attempts:
        Executions attempted per chunk before its jobs are failed
        (worker deaths) or handed to the final serial fallback (raised
        exceptions).
    backoff_s / backoff_multiplier / jitter:
        Sleep before retry ``k`` is ``backoff_s * multiplier**(k-1)``
        scaled by ``1 ± jitter`` — exponential backoff with jitter so
        co-scheduled runs don't respawn pools in lockstep.
    jitter_seed:
        Seed of the jitter stream (deterministic scheduling for tests).
    job_timeout_s:
        Per-job wall-clock budget; a chunk of ``k`` jobs gets ``k`` times
        this.  ``None`` disables the watchdog.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.25
    jitter_seed: int = 0
    job_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_multiplier < 1:
            raise ValueError("backoff_s >= 0 and backoff_multiplier >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")

    def backoff(self, attempt: int, rng: Random) -> float:
        """Sleep before running ``attempt`` (attempt 2 is the first retry)."""
        base = self.backoff_s * self.backoff_multiplier ** max(0, attempt - 2)
        return base * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))


class _Chunk:
    """One schedulable unit: indices into the job list + retry state."""

    __slots__ = ("indices", "attempt", "running_since", "timed_out")

    def __init__(self, indices: Tuple[int, ...], attempt: int = 1) -> None:
        self.indices = indices
        self.attempt = attempt
        self.running_since: Optional[float] = None
        self.timed_out = False


class SerialExecutor:
    """Run every job in the calling process, in order.

    Exceptions propagate (a serial run has a usable traceback and nothing
    else in flight to protect); the parallel executor is the layer that
    converts failures into :class:`~repro.engine.failures.JobFailure`.
    """

    #: degree of parallelism (for reporting)
    workers = 1

    def run(self, jobs: Sequence[SimJob]) -> List[Tuple[object, float]]:
        """Execute the jobs one after another."""
        return [execute_job(job) for job in jobs]


class ParallelExecutor:
    """Fan jobs out over a ``ProcessPoolExecutor``, fault-tolerantly.

    Parameters
    ----------
    workers:
        Worker process count; 0 derives ``os.cpu_count()``.
    chunk_size:
        Jobs per worker task; 0 derives via :func:`derive_chunk_size`.
    retry:
        The :class:`RetryPolicy`; ``None`` uses the defaults (3 attempts,
        50 ms base backoff, no per-job timeout).
    chaos:
        Optional :class:`~repro.chaos.engine.HarnessChaos` fault injector
        (tests): may break the pool at submit and attach worker-side
        directives (kill/hang/slow/backend-fail) to chunk submissions.
        ``None`` — the production value — takes none of those branches.
    """

    def __init__(
        self,
        workers: int = 0,
        chunk_size: int = 0,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional["HarnessChaos"] = None,
    ) -> None:
        if workers < 0 or chunk_size < 0:
            raise ValueError("workers and chunk_size must be >= 0")
        self.workers = workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.retry = retry or RetryPolicy()
        self._chaos = chaos

    def run(self, jobs: Sequence[SimJob]) -> List[Tuple[object, float]]:
        """Execute the jobs across worker processes; order is preserved.

        Every job gets an entry: successes as ``(result, seconds)``,
        unrecoverable failures as ``(JobFailure, seconds)``.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        workers = min(self.workers, len(jobs))
        if workers <= 1:
            return [_guarded_execute(job) for job in jobs]
        return self._run_pool(jobs, workers)

    # ------------------------------------------------------------------

    def _run_pool(
        self, jobs: List[SimJob], workers: int
    ) -> List[Tuple[object, float]]:
        policy = self.retry
        # Backoff jitter draws from a *named* seeded substream
        # (repro.util.rng is the sanctioned randomness entry point), so
        # scheduling noise can never bleed into — or be perturbed by —
        # any other stochastic component sharing the process.
        rng = substream(policy.jitter_seed, "engine", "backoff-jitter")
        n = len(jobs)
        results: List[Optional[Tuple[object, float]]] = [None] * n
        size = derive_chunk_size(n, workers, self.chunk_size)
        queue: Deque[_Chunk] = deque(
            _Chunk(tuple(range(i, min(i + size, n))))
            for i in range(0, n, size)
        )
        pool: Optional[ProcessPoolExecutor] = None
        quarantine = False
        try:
            while queue:
                retry_round = any(c.attempt > 1 for c in queue)
                if retry_round:
                    time.sleep(policy.backoff(
                        max(c.attempt for c in queue), rng
                    ))
                if pool is None:
                    try:
                        pool = ProcessPoolExecutor(max_workers=workers)
                    except OSError as exc:
                        _log.warning(
                            "cannot spawn a worker pool (%s); running %d "
                            "chunk(s) serially", exc, len(queue),
                        )
                        while queue:
                            chunk = queue.popleft()
                            for i in chunk.indices:
                                results[i] = _guarded_execute(
                                    jobs[i], attempts=chunk.attempt
                                )
                        break
                if quarantine:
                    # one chunk in flight: a pool break is *this* chunk's
                    # fault, so attempts are spent with exact attribution
                    solo: Deque[_Chunk] = deque([queue.popleft()])
                    broken = self._drive(
                        pool, jobs, solo, results, attribute_breaks=True
                    )
                    queue.extendleft(reversed(solo))
                else:
                    broken = self._drive(pool, jobs, queue, results)
                    if broken:
                        quarantine = True
                        _log.warning(
                            "worker pool broke; re-running %d lost "
                            "chunk(s) one at a time to isolate the "
                            "culprit", len(queue),
                        )
                if broken:
                    pool.shutdown(wait=False)
                    pool = None
        finally:
            if pool is not None:
                pool.shutdown()
        out: List[Tuple[object, float]] = []
        for i, slot in enumerate(results):
            if slot is None:  # defensive: no job may go unanswered
                slot = _guarded_execute(jobs[i])
            out.append(slot)
        return out

    def _drive(
        self,
        pool: ProcessPoolExecutor,
        jobs: List[SimJob],
        queue: Deque[_Chunk],
        results: List[Optional[Tuple[object, float]]],
        attribute_breaks: bool = False,
    ) -> bool:
        """Submit everything queued and absorb completions.

        Returns True when the pool broke (caller respawns); the queue then
        holds exactly the work that still needs a pool.  With
        ``attribute_breaks`` a pool break charges the lost chunk an attempt
        (quarantine mode: the caller guarantees one chunk in flight, so the
        break is attributable); otherwise lost chunks are collateral and
        re-run for free.
        """
        policy = self.retry
        collateral = not attribute_breaks
        inflight: Dict["Future[List[Tuple[object, ...]]]", _Chunk] = {}
        broken = False
        while queue:
            chunk = queue.popleft()
            try:
                actions = None
                if self._chaos is not None:
                    # both hooks inside the try: an injected pool break is
                    # recovered by the very machinery it exercises
                    self._chaos.before_submit()
                    actions = self._chaos.chunk_actions(
                        len(chunk.indices), chunk.attempt,
                        policy.max_attempts,
                    )
                fut = pool.submit(
                    _run_chunk, [jobs[i] for i in chunk.indices], actions
                )
            except (BrokenExecutor, RuntimeError):
                queue.appendleft(chunk)
                broken = True
                break
            inflight[fut] = chunk
        while inflight and not broken:
            done, _ = wait(
                list(inflight), timeout=_POLL_S,
                return_when=FIRST_COMPLETED,
            )
            for fut in done:
                chunk = inflight.pop(fut)
                broken |= self._absorb(
                    fut, chunk, jobs, queue, results, collateral=collateral
                )
            if not broken and policy.job_timeout_s is not None:
                if self._watchdog(pool, inflight):
                    broken = True
        # Pool broke: every in-flight future resolves (ok if it finished
        # first, BrokenExecutor otherwise) — drain so only lost chunks
        # re-run.  (A chunk the watchdog marked timed_out is handled by
        # that flag regardless of the collateral setting.)
        for fut, chunk in inflight.items():
            self._absorb(
                fut, chunk, jobs, queue, results,
                draining=True, collateral=collateral,
            )
        return broken

    def _absorb(
        self,
        fut: "Future[List[Tuple[object, ...]]]",
        chunk: _Chunk,
        jobs: List[SimJob],
        queue: Deque[_Chunk],
        results: List[Optional[Tuple[object, float]]],
        draining: bool = False,
        collateral: bool = False,
    ) -> bool:
        """Fold one finished future into results/queue; True if pool broke."""
        policy = self.retry
        try:
            outcomes = fut.result(timeout=30 if draining else None)
        except BrokenExecutor:
            self._requeue_lost(chunk, jobs, queue, results, collateral)
            return True
        except Exception as exc:  # unpicklable job/result etc.
            for i in chunk.indices:
                results[i] = (
                    JobFailure(
                        job_kind=job_kind(jobs[i]),
                        error_type=type(exc).__name__,
                        message=str(exc),
                        attempts=chunk.attempt,
                    ),
                    0.0,
                )
            return False
        for i, outcome in zip(chunk.indices, outcomes):
            if outcome[0] == "ok":
                results[i] = (outcome[1], outcome[2])
                continue
            _, err_type, message, tb, seconds = outcome
            if chunk.attempt < policy.max_attempts:
                queue.append(_Chunk((i,), attempt=chunk.attempt + 1))
                continue
            # Final serial fallback: one in-process attempt, then report.
            _log.warning(
                "job %d failed %d time(s) in workers (%s: %s); trying "
                "serially", i, chunk.attempt, err_type, message,
            )
            result, secs = _guarded_execute(
                jobs[i], attempts=chunk.attempt + 1
            )
            if isinstance(result, JobFailure):
                result = JobFailure(
                    job_kind=result.job_kind, error_type=err_type,
                    message=message, traceback=tb,
                    attempts=chunk.attempt + 1,
                )
            results[i] = (result, secs + seconds)
        return False

    def _requeue_lost(
        self,
        chunk: _Chunk,
        jobs: List[SimJob],
        queue: Deque[_Chunk],
        results: List[Optional[Tuple[object, float]]],
        collateral: bool = False,
    ) -> None:
        """Reschedule (or fail) a chunk whose worker vanished.

        ``collateral`` marks chunks lost only because the watchdog killed
        the pool for *another* chunk's overrun: they re-run with no
        attempt spent.
        """
        policy = self.retry
        if chunk.timed_out:
            if len(chunk.indices) == 1:
                # a timeout spends an attempt like any other failure: a
                # transiently wedged run (I/O stall, injected hang) gets
                # retried; only exhausting the budget fails the job
                if chunk.attempt < policy.max_attempts:
                    queue.append(
                        _Chunk(chunk.indices, attempt=chunk.attempt + 1)
                    )
                    return
                i = chunk.indices[0]
                results[i] = (
                    JobFailure(
                        job_kind=job_kind(jobs[i]),
                        error_type="JobTimeout",
                        message=(
                            f"exceeded {policy.job_timeout_s}s wall-clock "
                            "budget"
                        ),
                        attempts=chunk.attempt,
                    ),
                    policy.job_timeout_s or 0.0,
                )
            else:
                # split to attribute the overrun; same attempt — the
                # singles each get their own (smaller) budget
                for i in chunk.indices:
                    queue.append(_Chunk((i,), attempt=chunk.attempt))
            return
        if collateral:
            fresh = _Chunk(chunk.indices, attempt=chunk.attempt)
            fresh.running_since = None
            queue.append(fresh)
            return
        if chunk.attempt >= policy.max_attempts:
            for i in chunk.indices:
                results[i] = (
                    JobFailure(
                        job_kind=job_kind(jobs[i]),
                        error_type="WorkerDied",
                        message=(
                            "worker process died (killed or crashed) "
                            f"after {chunk.attempt} attempt(s)"
                        ),
                        attempts=chunk.attempt,
                    ),
                    0.0,
                )
        elif len(chunk.indices) > 1:
            # isolate the poison: innocent chunk-mates succeed as singles
            for i in chunk.indices:
                queue.append(_Chunk((i,), attempt=chunk.attempt + 1))
        else:
            queue.append(_Chunk(chunk.indices, attempt=chunk.attempt + 1))

    def _watchdog(
        self,
        pool: ProcessPoolExecutor,
        inflight: Dict["Future[List[Tuple[object, ...]]]", _Chunk],
    ) -> bool:
        """Kill the pool when a running chunk exceeds its time budget.

        A hung worker cannot be cancelled through the executor API, so the
        watchdog kills the worker processes: in-flight futures then raise
        ``BrokenProcessPool`` and the drain path re-runs everything except
        the timed-out chunk (marked here), which is failed or split.
        """
        policy = self.retry
        now = time.monotonic()
        fired = False
        for fut, chunk in inflight.items():
            if not fut.running():
                continue
            if chunk.running_since is None:
                chunk.running_since = now
            elif (
                now - chunk.running_since
                > policy.job_timeout_s * len(chunk.indices)
            ):
                chunk.timed_out = True
                fired = True
        if fired:
            _log.warning(
                "watchdog: job exceeded %.1fs budget; recycling the "
                "worker pool", policy.job_timeout_s,
            )
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except OSError as exc:
                    # already-reaped worker: nothing to kill, nothing lost
                    _log.debug("watchdog kill of %s: %s", proc, exc)
        return fired
