"""Job executors: serial in-process, or fanned out over worker processes.

Both executors implement one method — ``run(jobs) -> [(result, seconds)]``
with results in submission order — so the engine is indifferent to where
jobs execute.  Simulations are deterministic pure functions of their job,
so the two executors return bit-identical results (asserted in
``tests/engine/test_executors.py``); parallelism changes wall-clock time
only.

The parallel executor ships jobs, not traces: jobs built on a
:class:`~repro.engine.jobs.TraceSpec` pickle to a few hundred bytes and
the worker regenerates (and memoises) the trace locally.  Jobs are batched
into chunks so per-task IPC overhead amortises across many short
simulations.
"""

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Sequence, Tuple

from repro.engine.jobs import SimJob, execute_job, execute_jobs


class SerialExecutor:
    """Run every job in the calling process, in order."""

    #: degree of parallelism (for reporting)
    workers = 1

    def run(self, jobs: Sequence[SimJob]) -> List[Tuple[object, float]]:
        """Execute the jobs one after another."""
        return [execute_job(job) for job in jobs]


class ParallelExecutor:
    """Fan jobs out over a ``ProcessPoolExecutor``.

    Parameters
    ----------
    workers:
        Worker process count; 0 derives ``os.cpu_count()``.
    chunk_size:
        Jobs per worker task; 0 derives ``ceil(len(jobs) / (4 * workers))``
        so each worker sees ~4 chunks and stragglers still load-balance.
    """

    def __init__(self, workers: int = 0, chunk_size: int = 0):
        if workers < 0 or chunk_size < 0:
            raise ValueError("workers and chunk_size must be >= 0")
        self.workers = workers or os.cpu_count() or 1
        self.chunk_size = chunk_size

    def run(self, jobs: Sequence[SimJob]) -> List[Tuple[object, float]]:
        """Execute the jobs across worker processes; order is preserved."""
        jobs = list(jobs)
        if not jobs:
            return []
        workers = min(self.workers, len(jobs))
        if workers <= 1:
            return [execute_job(job) for job in jobs]
        chunk = self.chunk_size or -(-len(jobs) // (4 * workers))
        chunks = [
            jobs[i : i + chunk] for i in range(0, len(jobs), chunk)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            timed: List[Tuple[object, float]] = []
            for batch in pool.map(execute_jobs, chunks):
                timed.extend(batch)
        return timed
