"""Trace container with region iteration and summary statistics."""

from typing import Dict, Iterator, List, Sequence

from repro.isa.instructions import Instr, OpClass


class Trace:
    """An ordered sequence of dynamic instructions plus provenance metadata.

    Traces are immutable by convention once generated; the simulators never
    mutate instructions.
    """

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instr],
        seed: int = 0,
        phase_starts: Sequence[int] = (),
    ):
        if not instructions:
            raise ValueError("a trace must contain at least one instruction")
        self.name = name
        self.instructions: List[Instr] = list(instructions)
        self.seed = seed
        #: indices at which a new fine-grain phase begins (diagnostics only)
        self.phase_starts: List[int] = list(phase_starts)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instr:
        return self.instructions[index]

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instructions)

    def regions(self, size: int) -> Iterator[List[Instr]]:
        """Yield consecutive regions of ``size`` instructions.

        The final region may be shorter.  Region granularity is the unit of
        the paper's Section-2 oracle-switching analysis (20 instructions and
        doublings thereof).
        """
        if size <= 0:
            raise ValueError("region size must be positive")
        for start in range(0, len(self.instructions), size):
            yield self.instructions[start : start + size]

    def op_histogram(self) -> Dict[OpClass, int]:
        """Count of dynamic instructions per op class."""
        counts: Dict[OpClass, int] = {op: 0 for op in OpClass}
        for instr in self.instructions:
            counts[OpClass(instr.op)] += 1
        return counts

    def memory_footprint(self, block: int = 64) -> int:
        """Number of distinct ``block``-byte blocks touched by memory ops."""
        if block <= 0:
            raise ValueError("block size must be positive")
        blocks = {
            instr.addr // block
            for instr in self.instructions
            if instr.is_mem
        }
        return len(blocks)

    def branch_count(self) -> int:
        """Number of dynamic conditional branches."""
        return sum(1 for i in self.instructions if i.op == OpClass.BRANCH)

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, len={len(self)}, seed={self.seed}, "
            f"phases={len(self.phase_starts)})"
        )
