"""Trace container with region iteration and summary statistics."""

import hashlib
import sys
from array import array
from typing import Dict, Iterator, List, Optional, Sequence

from repro.isa.instructions import Instr, OpClass


class DecodedTrace:
    """Column-major view of a trace for the simulator hot loop.

    The cycle-stepped core touches one or two instruction fields per stage;
    reading them through :class:`Instr` objects costs an attribute lookup
    (descriptor dispatch through ``__slots__``) per field per access.  This
    view decodes every timing-relevant field once into parallel plain lists,
    so the hot loop pays a single list index instead.  Built lazily by
    :meth:`Trace.decoded` and cached on the trace (traces are immutable by
    convention), so N cores contesting one trace share one decode.
    """

    __slots__ = ("ops", "pcs", "deps1", "deps2", "addrs", "takens")

    def __init__(self, instructions: Sequence[Instr]) -> None:
        self.ops: List[int] = [i.op for i in instructions]
        self.pcs: List[int] = [i.pc for i in instructions]
        self.deps1: List[int] = [i.dep1 for i in instructions]
        self.deps2: List[int] = [i.dep2 for i in instructions]
        self.addrs: List[int] = [i.addr for i in instructions]
        self.takens: List[bool] = [i.taken for i in instructions]


class Trace:
    """An ordered sequence of dynamic instructions plus provenance metadata.

    Traces are immutable by convention once generated; the simulators never
    mutate instructions.
    """

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instr],
        seed: int = 0,
        phase_starts: Sequence[int] = (),
    ) -> None:
        if not instructions:
            raise ValueError("a trace must contain at least one instruction")
        self.name = name
        self.instructions: List[Instr] = list(instructions)
        self.seed = seed
        #: indices at which a new fine-grain phase begins (diagnostics only)
        self.phase_starts: List[int] = list(phase_starts)
        self._fingerprint: Optional[str] = None
        self._decoded: Optional[DecodedTrace] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instr:
        return self.instructions[index]

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instructions)

    def regions(self, size: int) -> Iterator[List[Instr]]:
        """Yield consecutive regions of ``size`` instructions.

        The final region may be shorter.  Region granularity is the unit of
        the paper's Section-2 oracle-switching analysis (20 instructions and
        doublings thereof).
        """
        if size <= 0:
            raise ValueError("region size must be positive")
        for start in range(0, len(self.instructions), size):
            yield self.instructions[start : start + size]

    def op_histogram(self) -> Dict[OpClass, int]:
        """Count of dynamic instructions per op class."""
        counts: Dict[OpClass, int] = {op: 0 for op in OpClass}
        for instr in self.instructions:
            counts[OpClass(instr.op)] += 1
        return counts

    def memory_footprint(self, block: int = 64) -> int:
        """Number of distinct ``block``-byte blocks touched by memory ops."""
        if block <= 0:
            raise ValueError("block size must be positive")
        blocks = {
            instr.addr // block
            for instr in self.instructions
            if instr.is_mem
        }
        return len(blocks)

    def branch_count(self) -> int:
        """Number of dynamic conditional branches."""
        return sum(1 for i in self.instructions if i.op == OpClass.BRANCH)

    def decoded(self) -> DecodedTrace:
        """The cached column-major :class:`DecodedTrace` of this trace."""
        if self._decoded is None:
            self._decoded = DecodedTrace(self.instructions)
        return self._decoded

    def __getstate__(self) -> Dict[str, object]:
        # The decoded view is a pure cache and several times the size of
        # the instructions themselves; drop it so pickled traces (parallel
        # executor job payloads, cached results) stay lean.  Receivers
        # rebuild it lazily on first decoded() call.
        state = self.__dict__.copy()
        state["_decoded"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._decoded = None

    def fingerprint(self) -> str:
        """Stable content hash of the trace (hex digest).

        Covers every timing-relevant instruction field plus the provenance
        metadata (profile/trace name, generator seed, phase starts), so two
        traces share a fingerprint iff a simulator cannot distinguish them.
        The digest is platform-independent (fields are serialised
        little-endian) and cached — traces are immutable by convention.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            header = (
                f"repro-trace/1\x00{self.name}\x00{self.seed}"
                f"\x00{len(self.instructions)}"
                f"\x00{','.join(map(str, self.phase_starts))}"
            )
            h.update(header.encode())
            instrs = self.instructions
            ops = array("B", (i.op for i in instrs))
            pcs = array("q", (i.pc for i in instrs))
            dep1 = array("q", (i.dep1 for i in instrs))
            dep2 = array("q", (i.dep2 for i in instrs))
            addr = array("q", (i.addr for i in instrs))
            taken = array("B", (1 if i.taken else 0 for i in instrs))
            for arr in (ops, pcs, dep1, dep2, addr, taken):
                if arr.itemsize > 1 and sys.byteorder == "big":
                    arr = array(arr.typecode, arr)
                    arr.byteswap()
                h.update(arr.tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, len={len(self)}, seed={self.seed}, "
            f"phases={len(self.phase_starts)})"
        )
