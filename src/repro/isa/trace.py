"""Trace container with region iteration and summary statistics.

Two trace shapes satisfy the :class:`TraceSource` protocol the simulators
consume: the concrete :class:`Trace` here (every instruction materialised)
and :class:`repro.isa.stream.StreamingTrace` (regions generated on demand,
never all resident).  Both fingerprint through the shared
:class:`TraceHasher`, so the streaming and materialised hash of one recipe
are identical by construction.
"""

import hashlib
import sys
from array import array
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    TypeVar,
)

from repro.isa.instructions import Instr, OpClass

T_co = TypeVar("T_co", covariant=True)


class Column(Protocol[T_co]):
    """Read-only indexed access to one instruction field — the exact
    surface the simulator hot loops use (index, iterate, len)."""

    def __len__(self) -> int: ...

    def __getitem__(self, index: int) -> T_co: ...

    def __iter__(self) -> Iterator[T_co]: ...


class DecodedColumns(Protocol):
    """Column-major instruction fields, as the simulator hot loops read
    them: six parallel columns indexed by dynamic sequence number.

    Satisfied by :class:`DecodedTrace` (plain lists) and by the windowed
    streaming columns of :class:`repro.isa.stream.StreamingDecoded`.
    """

    @property
    def ops(self) -> Column[int]: ...

    @property
    def pcs(self) -> Column[int]: ...

    @property
    def deps1(self) -> Column[int]: ...

    @property
    def deps2(self) -> Column[int]: ...

    @property
    def addrs(self) -> Column[int]: ...

    @property
    def takens(self) -> Column[bool]: ...


class TraceSource(Protocol):
    """What a standalone simulation needs from a trace, structurally.

    :class:`Trace` satisfies it with cached concrete columns;
    :class:`repro.isa.stream.StreamingTrace` satisfies it with windowed
    columns over chunked generation.  Code that needs the full trace
    resident (contests, serialisation) takes :class:`Trace` explicitly.
    """

    @property
    def name(self) -> str: ...

    @property
    def seed(self) -> int: ...

    def __len__(self) -> int: ...

    def __getitem__(self, index: int) -> Instr: ...

    def decoded(self) -> DecodedColumns:
        """Column-major view of the timing-relevant instruction fields."""
        ...

    def fingerprint(self) -> str:
        """Stable content hash of the trace (hex digest)."""
        ...


class TraceHasher:
    """Chunk-incremental trace fingerprint (recipe ``repro-trace/2``).

    The v2 recipe hashes each instruction field through its own sha256
    sub-hasher, then combines the six sub-digests with a header (name,
    seed, length) and a phase-start trailer.  Per-field sub-hashers make
    the digest computable in a single pass over *chunked* generation —
    field bytes arrive interleaved per region, not field-major — and the
    trailer placement lets phase starts be folded in after the last chunk,
    when they are first fully known.  Chunking therefore cannot affect the
    digest: feeding one whole-trace chunk or a thousand single-instruction
    chunks yields identical bytes into every sub-hasher (pinned by
    ``tests/corpus/test_grammar.py``).
    """

    def __init__(self) -> None:
        self._subs = [hashlib.sha256() for _ in range(6)]
        self._length = 0

    @staticmethod
    def _bytes(typecode: str, values: Iterable[int]) -> bytes:
        arr = array(typecode, values)
        if arr.itemsize > 1 and sys.byteorder == "big":
            arr.byteswap()
        return arr.tobytes()

    def update(
        self,
        ops: Sequence[int],
        pcs: Sequence[int],
        deps1: Sequence[int],
        deps2: Sequence[int],
        addrs: Sequence[int],
        takens: Sequence[bool],
    ) -> None:
        """Fold one region's columns into the running digest."""
        self._subs[0].update(self._bytes("B", ops))
        self._subs[1].update(self._bytes("q", pcs))
        self._subs[2].update(self._bytes("q", deps1))
        self._subs[3].update(self._bytes("q", deps2))
        self._subs[4].update(self._bytes("q", addrs))
        self._subs[5].update(
            self._bytes("B", (1 if t else 0 for t in takens))
        )
        self._length += len(ops)

    def digest(
        self, name: str, seed: int, phase_starts: Sequence[int]
    ) -> str:
        """Finalise: header + per-field sub-digests + phase-start trailer."""
        h = hashlib.sha256()
        h.update(f"repro-trace/2\x00{name}\x00{seed}\x00{self._length}".encode())
        for sub in self._subs:
            h.update(sub.digest())
        h.update(("\x00" + ",".join(map(str, phase_starts))).encode())
        return h.hexdigest()


class DecodedTrace:
    """Column-major view of a trace for the simulator hot loop.

    The cycle-stepped core touches one or two instruction fields per stage;
    reading them through :class:`Instr` objects costs an attribute lookup
    (descriptor dispatch through ``__slots__``) per field per access.  This
    view decodes every timing-relevant field once into parallel plain lists,
    so the hot loop pays a single list index instead.  Built lazily by
    :meth:`Trace.decoded` and cached on the trace (traces are immutable by
    convention), so N cores contesting one trace share one decode.
    """

    __slots__ = ("ops", "pcs", "deps1", "deps2", "addrs", "takens")

    def __init__(self, instructions: Sequence[Instr]) -> None:
        self.ops: List[int] = [i.op for i in instructions]
        self.pcs: List[int] = [i.pc for i in instructions]
        self.deps1: List[int] = [i.dep1 for i in instructions]
        self.deps2: List[int] = [i.dep2 for i in instructions]
        self.addrs: List[int] = [i.addr for i in instructions]
        self.takens: List[bool] = [i.taken for i in instructions]


class Trace:
    """An ordered sequence of dynamic instructions plus provenance metadata.

    Traces are immutable by convention once generated; the simulators never
    mutate instructions.
    """

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instr],
        seed: int = 0,
        phase_starts: Sequence[int] = (),
    ) -> None:
        if not instructions:
            raise ValueError("a trace must contain at least one instruction")
        self.name = name
        self.instructions: List[Instr] = list(instructions)
        self.seed = seed
        #: indices at which a new fine-grain phase begins (diagnostics only)
        self.phase_starts: List[int] = list(phase_starts)
        self._fingerprint: Optional[str] = None
        self._decoded: Optional[DecodedTrace] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instr:
        return self.instructions[index]

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instructions)

    def regions(self, size: int) -> Iterator[List[Instr]]:
        """Yield consecutive regions of ``size`` instructions.

        The final region may be shorter.  Region granularity is the unit of
        the paper's Section-2 oracle-switching analysis (20 instructions and
        doublings thereof).
        """
        if size <= 0:
            raise ValueError("region size must be positive")
        for start in range(0, len(self.instructions), size):
            yield self.instructions[start : start + size]

    def op_histogram(self) -> Dict[OpClass, int]:
        """Count of dynamic instructions per op class."""
        counts: Dict[OpClass, int] = {op: 0 for op in OpClass}
        for instr in self.instructions:
            counts[OpClass(instr.op)] += 1
        return counts

    def memory_footprint(self, block: int = 64) -> int:
        """Number of distinct ``block``-byte blocks touched by memory ops."""
        if block <= 0:
            raise ValueError("block size must be positive")
        blocks = {
            instr.addr // block
            for instr in self.instructions
            if instr.is_mem
        }
        return len(blocks)

    def branch_count(self) -> int:
        """Number of dynamic conditional branches."""
        return sum(1 for i in self.instructions if i.op == OpClass.BRANCH)

    def decoded(self) -> DecodedTrace:
        """The cached column-major :class:`DecodedTrace` of this trace."""
        if self._decoded is None:
            self._decoded = DecodedTrace(self.instructions)
        return self._decoded

    def __getstate__(self) -> Dict[str, object]:
        # The decoded view is a pure cache and several times the size of
        # the instructions themselves; drop it so pickled traces (parallel
        # executor job payloads, cached results) stay lean.  Receivers
        # rebuild it lazily on first decoded() call.
        state = self.__dict__.copy()
        state["_decoded"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._decoded = None

    def fingerprint(self) -> str:
        """Stable content hash of the trace (hex digest).

        Covers every timing-relevant instruction field plus the provenance
        metadata (profile/trace name, generator seed, phase starts), so two
        traces share a fingerprint iff a simulator cannot distinguish them.
        The digest is platform-independent (fields are serialised
        little-endian) and cached — traces are immutable by convention.
        Computed through :class:`TraceHasher` (one whole-trace chunk), so a
        :class:`repro.isa.stream.StreamingTrace` of the same recipe hashes
        to the same digest without materialising.
        """
        if self._fingerprint is None:
            decoded = self.decoded()
            hasher = TraceHasher()
            hasher.update(
                decoded.ops, decoded.pcs, decoded.deps1, decoded.deps2,
                decoded.addrs, decoded.takens,
            )
            self._fingerprint = hasher.digest(
                self.name, self.seed, self.phase_starts
            )
        return self._fingerprint

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, len={len(self)}, seed={self.seed}, "
            f"phases={len(self.phase_starts)})"
        )
