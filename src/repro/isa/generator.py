"""Deterministic synthetic trace generation from a phase mixture.

``generate_trace`` walks a Markov chain over the mixture's phase types
(geometric dwell, no self-transitions) and emits one :class:`Instr` per step.
Generation is fully determined by ``(mix, length, seed)``.
"""

from collections import deque
from typing import Dict, List, Optional

from repro.isa.instructions import Instr, OpClass
from repro.isa.phases import PhaseMix, PhaseType
from repro.isa.trace import Trace
from repro.util.rng import Random, substream


class _PhaseRuntime:
    """Mutable per-phase state that persists across re-entries of a phase."""

    __slots__ = (
        "phase",
        "pc_base",
        "data_base",
        "body_pos",
        "stream_off",
        "branch_dirs",
        "next_branch",
        "obj_base",
        "obj_pos",
    )

    def __init__(
        self, phase: PhaseType, index: int, region_id: int, rng: Random
    ) -> None:
        self.phase = phase
        # Distinct PC regions per phase type keep predictor behaviour
        # attributable to the phase; the data region may be shared between
        # phases carrying the same region tag (see PhaseType.region).
        self.pc_base = (index + 1) << 20
        self.data_base = (region_id + 1) << 26
        self.body_pos = 0
        self.stream_off = 0
        self.obj_base = 0
        self.obj_pos = phase.obj_words  # force a fresh object first
        # Fixed per-static-branch bias direction; predictability then comes
        # entirely from the phase's branch_bias parameter.
        self.branch_dirs = [
            rng.random() < phase.taken_frac
            for _ in range(phase.n_static_branches)
        ]
        self.next_branch = 0


def _sample_dwell(rng: Random, mean: int) -> int:
    """Geometric-ish dwell with the configured mean, never below 8."""
    return max(8, int(rng.expovariate(1.0 / mean)))


def generate_trace(
    mix: PhaseMix,
    length: int,
    seed: int = 0,
    name: Optional[str] = None,
) -> Trace:
    """Generate a ``length``-instruction trace for the given phase mixture.

    Parameters
    ----------
    mix:
        The workload's phase mixture (see :mod:`repro.isa.workloads`).
    length:
        Number of dynamic instructions to emit.
    seed:
        Root seed; traces are bit-identical for identical arguments.
    name:
        Trace name; defaults to the mixture name.
    """
    if length <= 0:
        raise ValueError("trace length must be positive")
    rng = substream(seed, "trace", mix.name)

    region_names = []
    region_ids = []
    for i, (p, _) in enumerate(mix.entries):
        tag = p.region or f"__private_{i}"
        if tag not in region_names:
            region_names.append(tag)
        region_ids.append(region_names.index(tag))
    runtimes = [
        _PhaseRuntime(p, i, region_ids[i], rng)
        for i, (p, _) in enumerate(mix.entries)
    ]
    weights = mix.weights

    indices = list(range(len(runtimes)))
    transitions = mix.transitions

    def pick_phase(current: int) -> int:
        # With an explicit transition matrix, draw the successor from the
        # current phase's row.  Otherwise: weighted draw *including* the
        # current phase — by renewal theory the long-run instruction share
        # of phase i is then exactly weight_i * dwell_i / sum_j w_j * d_j.
        # (Excluding the current phase would cap any dominant phase near
        # 50% regardless of its weight.)  A self-draw simply extends the
        # dwell; a phase boundary is only recorded on an actual change.
        if transitions is not None and current >= 0:
            return rng.choices(indices, weights=transitions[current], k=1)[0]
        return rng.choices(indices, weights=weights, k=1)[0]

    instructions: List[Instr] = []
    phase_starts: List[int] = [0]
    producers: deque = deque(maxlen=64)
    last_load_seq = -1

    current = pick_phase(-1)
    dwell = _sample_dwell(rng, runtimes[current].phase.mean_dwell)

    for seq in range(length):
        if dwell <= 0:
            chosen = pick_phase(current)
            dwell = _sample_dwell(rng, runtimes[chosen].phase.mean_dwell)
            if chosen != current:
                current = chosen
                phase_starts.append(seq)
        dwell -= 1

        state = runtimes[current]
        phase = state.phase

        # --- choose the op class from the phase mix
        r = rng.random()
        if phase.syscall_rate and rng.random() < phase.syscall_rate:
            op = OpClass.SYSCALL
        elif r < phase.load_frac:
            op = OpClass.LOAD
        elif r < phase.load_frac + phase.store_frac:
            op = OpClass.STORE
        elif r < phase.load_frac + phase.store_frac + phase.branch_frac:
            op = OpClass.BRANCH
        elif r < (
            phase.load_frac
            + phase.store_frac
            + phase.branch_frac
            + phase.imul_frac
        ):
            op = OpClass.IMUL
        elif r < (
            phase.load_frac
            + phase.store_frac
            + phase.branch_frac
            + phase.imul_frac
            + phase.idiv_frac
        ):
            op = OpClass.IDIV
        else:
            op = OpClass.IALU

        # --- program counter
        if op == OpClass.BRANCH:
            j = state.next_branch
            state.next_branch = (j + 1) % phase.n_static_branches
            pc = state.pc_base + 4 * (phase.body_size + j)
        else:
            pc = state.pc_base + 4 * state.body_pos
            state.body_pos = (state.body_pos + 1) % phase.body_size

        # --- register dependences
        dep1 = -1
        dep2 = -1
        if op != OpClass.NOP:
            dep1_prob = phase.dep1_frac
            if op == OpClass.BRANCH:
                # conditions are usually computed shortly before the branch
                dep1_prob *= phase.branch_dep_scale
            if (
                op == OpClass.LOAD
                and phase.pointer_chase
                and last_load_seq >= 0
            ):
                dep1 = last_load_seq
            elif producers and rng.random() < dep1_prob:
                if rng.random() < phase.chain_frac:
                    dep1 = producers[-1]
                else:
                    window = min(phase.dep_window, len(producers))
                    dep1 = producers[-1 - rng.randrange(window)]
            if producers and rng.random() < phase.two_src_frac:
                window = min(phase.dep_window, len(producers))
                dep2 = producers[-1 - rng.randrange(window)]

        # --- memory address
        addr = 0
        if op == OpClass.LOAD or op == OpClass.STORE:
            if rng.random() < phase.seq_frac:
                state.stream_off = (
                    state.stream_off + phase.stride
                ) % phase.footprint
                offset = state.stream_off
            else:
                # Skewed-random *object* within the footprint, walked
                # densely word by word: temporal locality falls off with
                # rank (see PhaseType docs), so larger caches capture a
                # larger share.  Ranks are scattered over the address space
                # with a multiplicative hash so the hot set spreads across
                # all cache sets instead of packing into the low ones.
                if state.obj_pos >= phase.obj_words:
                    obj_bytes = phase.obj_words * 8
                    objects = max(1, phase.footprint // obj_bytes)
                    rank = int(objects * (rng.random() ** phase.zipf_skew))
                    state.obj_base = ((rank * 2654435761) % objects) * obj_bytes
                    state.obj_pos = 0
                offset = state.obj_base + state.obj_pos * 8
                state.obj_pos += 1
            addr = state.data_base + offset

        # --- branch outcome
        taken = False
        if op == OpClass.BRANCH:
            direction = state.branch_dirs[
                (pc // 4 - phase.body_size) % phase.n_static_branches
            ]
            taken = (
                direction
                if rng.random() < phase.branch_bias
                else not direction
            )

        instr = Instr(op=op, pc=pc, dep1=dep1, dep2=dep2, addr=addr, taken=taken)
        instructions.append(instr)

        if instr.produces:
            producers.append(seq)
            if op == OpClass.LOAD:
                last_load_seq = seq

    return Trace(
        name=name or mix.name,
        instructions=instructions,
        seed=seed,
        phase_starts=phase_starts,
    )


def trace_phase_summary(trace: Trace) -> Dict[str, float]:
    """Summary diagnostics: mean phase dwell and transition count."""
    starts = trace.phase_starts
    if len(starts) < 2:
        return {"transitions": 0, "mean_dwell": float(len(trace))}
    dwells = [b - a for a, b in zip(starts, starts[1:])]
    dwells.append(len(trace) - starts[-1])
    return {
        "transitions": float(len(starts) - 1),
        "mean_dwell": sum(dwells) / len(dwells),
    }
