"""Deterministic synthetic trace generation from a phase mixture.

``generate_trace`` walks a Markov chain over the mixture's phase types
(geometric dwell, no self-transitions) and emits one :class:`Instr` per step.
Generation is fully determined by ``(mix, length, seed)``.

Generation is *chunked* at its core: :func:`generate_chunks` yields
column-major :class:`TraceChunk` regions one at a time, drawing from the
seeded RNG in exactly the per-instruction order the materialising path has
always used, so a million-instruction trace can be produced and consumed
region by region without ever materialising (see
:class:`repro.isa.stream.StreamingTrace`).  :func:`generate_trace` is a
thin consumer that assembles the chunks into a concrete
:class:`~repro.isa.trace.Trace`; the two paths are bit-identical by
construction and pinned by ``tests/corpus``.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from repro.isa.instructions import Instr, OpClass, PRODUCING_OPS
from repro.isa.phases import PhaseMix, PhaseType
from repro.isa.trace import Trace
from repro.util.rng import Random, substream

#: Default streaming-generation region size, in instructions.  A runtime
#: knob only: chunking never changes the emitted instruction stream or the
#: trace fingerprint (pinned by ``tests/corpus/test_grammar.py``), so it
#: deliberately does NOT participate in any cache identity.
DEFAULT_CHUNK_SIZE = 4096


@dataclass
class TraceChunk:
    """One contiguous, column-major region of a generated trace.

    ``start`` is the absolute index of the first instruction;
    ``phase_starts`` holds the *absolute* indices (within this chunk) at
    which a new fine-grain phase begins.  Columns mirror
    :class:`~repro.isa.trace.DecodedTrace` field for field.
    """

    start: int
    ops: List[int] = field(default_factory=list)
    pcs: List[int] = field(default_factory=list)
    deps1: List[int] = field(default_factory=list)
    deps2: List[int] = field(default_factory=list)
    addrs: List[int] = field(default_factory=list)
    takens: List[bool] = field(default_factory=list)
    phase_starts: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def instructions(self) -> List[Instr]:
        """Materialise this chunk's rows as :class:`Instr` objects."""
        return [
            Instr(op=o, pc=p, dep1=d1, dep2=d2, addr=a, taken=t)
            for o, p, d1, d2, a, t in zip(
                self.ops, self.pcs, self.deps1, self.deps2,
                self.addrs, self.takens,
            )
        ]


class _PhaseRuntime:
    """Mutable per-phase state that persists across re-entries of a phase."""

    __slots__ = (
        "phase",
        "pc_base",
        "data_base",
        "body_pos",
        "stream_off",
        "branch_dirs",
        "next_branch",
        "obj_base",
        "obj_pos",
    )

    def __init__(
        self, phase: PhaseType, index: int, region_id: int, rng: Random
    ) -> None:
        self.phase = phase
        # Distinct PC regions per phase type keep predictor behaviour
        # attributable to the phase; the data region may be shared between
        # phases carrying the same region tag (see PhaseType.region).
        self.pc_base = (index + 1) << 20
        self.data_base = (region_id + 1) << 26
        self.body_pos = 0
        self.stream_off = 0
        self.obj_base = 0
        self.obj_pos = phase.obj_words  # force a fresh object first
        # Fixed per-static-branch bias direction; predictability then comes
        # entirely from the phase's branch_bias parameter.
        self.branch_dirs = [
            rng.random() < phase.taken_frac
            for _ in range(phase.n_static_branches)
        ]
        self.next_branch = 0


def _sample_dwell(rng: Random, mean: int) -> int:
    """Geometric-ish dwell with the configured mean, never below 8."""
    return max(8, int(rng.expovariate(1.0 / mean)))


def generate_chunks(
    mix: PhaseMix,
    length: int,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[TraceChunk]:
    """Generate the trace for ``(mix, length, seed)`` as a chunk stream.

    Yields consecutive :class:`TraceChunk` regions of ``chunk_size``
    instructions (the final one may be shorter).  The RNG draw order is
    strictly per-instruction and independent of ``chunk_size``, so the
    concatenated chunks are bit-identical to :func:`generate_trace` for
    any chunking — the invariant the corpus parity suite pins.
    """
    if length <= 0:
        raise ValueError("trace length must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk size must be positive")
    rng = substream(seed, "trace", mix.name)

    region_names = []
    region_ids = []
    for i, (p, _) in enumerate(mix.entries):
        tag = p.region or f"__private_{i}"
        if tag not in region_names:
            region_names.append(tag)
        region_ids.append(region_names.index(tag))
    runtimes = [
        _PhaseRuntime(p, i, region_ids[i], rng)
        for i, (p, _) in enumerate(mix.entries)
    ]
    weights = mix.weights

    indices = list(range(len(runtimes)))
    transitions = mix.transitions

    def pick_phase(current: int) -> int:
        # With an explicit transition matrix, draw the successor from the
        # current phase's row.  Otherwise: weighted draw *including* the
        # current phase — by renewal theory the long-run instruction share
        # of phase i is then exactly weight_i * dwell_i / sum_j w_j * d_j.
        # (Excluding the current phase would cap any dominant phase near
        # 50% regardless of its weight.)  A self-draw simply extends the
        # dwell; a phase boundary is only recorded on an actual change.
        if transitions is not None and current >= 0:
            return rng.choices(indices, weights=transitions[current], k=1)[0]
        return rng.choices(indices, weights=weights, k=1)[0]

    chunk = TraceChunk(start=0, phase_starts=[0])
    producers: Deque[int] = deque(maxlen=64)
    last_load_seq = -1

    current = pick_phase(-1)
    dwell = _sample_dwell(rng, runtimes[current].phase.mean_dwell)

    for seq in range(length):
        if dwell <= 0:
            chosen = pick_phase(current)
            dwell = _sample_dwell(rng, runtimes[chosen].phase.mean_dwell)
            if chosen != current:
                current = chosen
                chunk.phase_starts.append(seq)
        dwell -= 1

        state = runtimes[current]
        phase = state.phase

        # --- choose the op class from the phase mix
        r = rng.random()
        if phase.syscall_rate and rng.random() < phase.syscall_rate:
            op = OpClass.SYSCALL
        elif r < phase.load_frac:
            op = OpClass.LOAD
        elif r < phase.load_frac + phase.store_frac:
            op = OpClass.STORE
        elif r < phase.load_frac + phase.store_frac + phase.branch_frac:
            op = OpClass.BRANCH
        elif r < (
            phase.load_frac
            + phase.store_frac
            + phase.branch_frac
            + phase.imul_frac
        ):
            op = OpClass.IMUL
        elif r < (
            phase.load_frac
            + phase.store_frac
            + phase.branch_frac
            + phase.imul_frac
            + phase.idiv_frac
        ):
            op = OpClass.IDIV
        else:
            op = OpClass.IALU

        # --- program counter
        if op == OpClass.BRANCH:
            j = state.next_branch
            state.next_branch = (j + 1) % phase.n_static_branches
            pc = state.pc_base + 4 * (phase.body_size + j)
        else:
            pc = state.pc_base + 4 * state.body_pos
            state.body_pos = (state.body_pos + 1) % phase.body_size

        # --- register dependences
        dep1 = -1
        dep2 = -1
        if op != OpClass.NOP:
            dep1_prob = phase.dep1_frac
            if op == OpClass.BRANCH:
                # conditions are usually computed shortly before the branch
                dep1_prob *= phase.branch_dep_scale
            if (
                op == OpClass.LOAD
                and phase.pointer_chase
                and last_load_seq >= 0
            ):
                dep1 = last_load_seq
            elif producers and rng.random() < dep1_prob:
                if rng.random() < phase.chain_frac:
                    dep1 = producers[-1]
                else:
                    window = min(phase.dep_window, len(producers))
                    dep1 = producers[-1 - rng.randrange(window)]
            if producers and rng.random() < phase.two_src_frac:
                window = min(phase.dep_window, len(producers))
                dep2 = producers[-1 - rng.randrange(window)]

        # --- memory address
        addr = 0
        if op == OpClass.LOAD or op == OpClass.STORE:
            if rng.random() < phase.seq_frac:
                state.stream_off = (
                    state.stream_off + phase.stride
                ) % phase.footprint
                offset = state.stream_off
            else:
                # Skewed-random *object* within the footprint, walked
                # densely word by word: temporal locality falls off with
                # rank (see PhaseType docs), so larger caches capture a
                # larger share.  Ranks are scattered over the address space
                # with a multiplicative hash so the hot set spreads across
                # all cache sets instead of packing into the low ones.
                if state.obj_pos >= phase.obj_words:
                    obj_bytes = phase.obj_words * 8
                    objects = max(1, phase.footprint // obj_bytes)
                    rank = int(objects * (rng.random() ** phase.zipf_skew))
                    state.obj_base = ((rank * 2654435761) % objects) * obj_bytes
                    state.obj_pos = 0
                offset = state.obj_base + state.obj_pos * 8
                state.obj_pos += 1
            addr = state.data_base + offset

        # --- branch outcome
        taken = False
        if op == OpClass.BRANCH:
            direction = state.branch_dirs[
                (pc // 4 - phase.body_size) % phase.n_static_branches
            ]
            taken = (
                direction
                if rng.random() < phase.branch_bias
                else not direction
            )

        chunk.ops.append(int(op))
        chunk.pcs.append(pc)
        chunk.deps1.append(dep1)
        chunk.deps2.append(dep2)
        chunk.addrs.append(addr)
        chunk.takens.append(taken)

        if op in PRODUCING_OPS:
            producers.append(seq)
            if op == OpClass.LOAD:
                last_load_seq = seq

        if len(chunk.ops) >= chunk_size:
            yield chunk
            chunk = TraceChunk(start=seq + 1)

    if chunk.ops:
        yield chunk


def generate_trace(
    mix: PhaseMix,
    length: int,
    seed: int = 0,
    name: Optional[str] = None,
) -> Trace:
    """Generate a ``length``-instruction trace for the given phase mixture.

    Parameters
    ----------
    mix:
        The workload's phase mixture (see :mod:`repro.isa.workloads`).
    length:
        Number of dynamic instructions to emit.
    seed:
        Root seed; traces are bit-identical for identical arguments.
    name:
        Trace name; defaults to the mixture name.
    """
    instructions: List[Instr] = []
    phase_starts: List[int] = []
    for chunk in generate_chunks(mix, length, seed, chunk_size=length):
        instructions.extend(chunk.instructions())
        phase_starts.extend(chunk.phase_starts)
    return Trace(
        name=name or mix.name,
        instructions=instructions,
        seed=seed,
        phase_starts=phase_starts,
    )


def trace_phase_summary(trace: Trace) -> Dict[str, float]:
    """Summary diagnostics: mean phase dwell and transition count."""
    starts = trace.phase_starts
    if len(starts) < 2:
        return {"transitions": 0, "mean_dwell": float(len(trace))}
    dwells = [b - a for a, b in zip(starts, starts[1:])]
    dwells.append(len(trace) - starts[-1])
    return {
        "transitions": float(len(starts) - 1),
        "mean_dwell": sum(dwells) / len(dwells),
    }
