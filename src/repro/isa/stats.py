"""Trace characterisation: the quantities workload calibration reasons about.

These diagnostics summarise a trace the way a configurational workload
characterisation (the paper's XpScalar companion, "Configurational Workload
Characterization", ISPASS 2008) would: instruction mix, dependence
structure (ideal ILP under an infinite machine), branch predictability
entropy, and working-set/reuse profiles.  They are model-free — computed
from the trace alone — and are used by the calibration tests and the
``trace_report`` example output.
"""

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.isa.instructions import OpClass
from repro.isa.trace import Trace


@dataclass
class TraceCharacter:
    """Summary statistics of one trace."""

    name: str
    length: int
    mix: Dict[str, float]
    #: mean dataflow-graph depth increase per instruction; 1/ilp_ideal is
    #: the critical-path fraction
    ilp_ideal: float
    #: mean dependence distance (producer to consumer, in instructions)
    mean_dep_distance: float
    #: fraction of instructions with at least one register source
    dep_frac: float
    #: per-static-branch outcome entropy in bits (0 = perfectly biased)
    branch_entropy_bits: float
    taken_frac: float
    #: distinct 64-byte blocks touched
    footprint_blocks: int
    #: fraction of memory accesses whose 64B block was seen in the last 64
    #: accesses (short-range temporal locality)
    reuse_short: float
    #: fraction of accesses continuing a +/-64B neighbourhood of the
    #: previous access (spatial locality)
    spatial_frac: float
    phase_transitions: int = 0
    mean_phase_dwell: float = 0.0

    def rows(self) -> List[List[object]]:
        """Key/value rows for table rendering."""
        return [
            ["instructions", self.length],
            ["ideal ILP", round(self.ilp_ideal, 2)],
            ["dep fraction", round(self.dep_frac, 3)],
            ["mean dep distance", round(self.mean_dep_distance, 1)],
            ["branch entropy (bits)", round(self.branch_entropy_bits, 3)],
            ["taken fraction", round(self.taken_frac, 3)],
            ["footprint (64B blocks)", self.footprint_blocks],
            ["short-range reuse", round(self.reuse_short, 3)],
            ["spatial fraction", round(self.spatial_frac, 3)],
            ["phase transitions", self.phase_transitions],
            ["mean phase dwell", round(self.mean_phase_dwell, 1)],
        ]


def _entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1 - p) * math.log2(1 - p))


def characterize(trace: Trace) -> TraceCharacter:
    """Compute :class:`TraceCharacter` for a trace (single pass, O(n))."""
    n = len(trace)
    mix_counts: Counter = Counter()

    # ideal ILP: dataflow depth under infinite resources, unit latencies
    depth = [0] * n
    max_depth = 0
    dep_count = 0
    dep_distance_sum = 0

    # branches
    outcomes: Dict[int, List[int]] = defaultdict(lambda: [0, 0])
    taken = 0
    branches = 0

    # memory
    blocks_seen = set()
    recent_blocks: List[int] = []
    recent_set: Dict[int, int] = {}
    reuse_hits = 0
    spatial_hits = 0
    mem_ops = 0
    prev_addr = None

    for seq, instr in enumerate(trace):
        op = instr.op
        mix_counts[OpClass(op).name] += 1

        d = 0
        for dep in (instr.dep1, instr.dep2):
            if dep >= 0:
                if depth[dep] > d:
                    d = depth[dep]
                dep_distance_sum += seq - dep
                dep_count += 1
        depth[seq] = d + 1
        if depth[seq] > max_depth:
            max_depth = depth[seq]

        if op == OpClass.BRANCH:
            branches += 1
            pair = outcomes[instr.pc]
            pair[int(instr.taken)] += 1
            if instr.taken:
                taken += 1
        elif instr.is_mem:
            mem_ops += 1
            block = instr.addr >> 6
            blocks_seen.add(block)
            if block in recent_set:
                reuse_hits += 1
            recent_blocks.append(block)
            recent_set[block] = recent_set.get(block, 0) + 1
            if len(recent_blocks) > 64:
                old = recent_blocks.pop(0)
                if recent_set[old] == 1:
                    del recent_set[old]
                else:
                    recent_set[old] -= 1
            if prev_addr is not None and abs(instr.addr - prev_addr) <= 64:
                spatial_hits += 1
            prev_addr = instr.addr

    if branches:
        entropy = sum(
            _entropy(t / (f + t)) * (f + t)
            for f, t in outcomes.values()
        ) / branches
    else:
        entropy = 0.0

    has_dep = sum(
        1 for i in trace.instructions if i.dep1 >= 0 or i.dep2 >= 0
    )

    starts = trace.phase_starts
    if len(starts) >= 2:
        dwells = [b - a for a, b in zip(starts, starts[1:])]
        dwells.append(n - starts[-1])
        mean_dwell = sum(dwells) / len(dwells)
    else:
        mean_dwell = float(n)

    return TraceCharacter(
        name=trace.name,
        length=n,
        mix={k: v / n for k, v in mix_counts.items()},
        ilp_ideal=n / max_depth if max_depth else float(n),
        mean_dep_distance=(dep_distance_sum / dep_count) if dep_count else 0.0,
        dep_frac=has_dep / n,
        branch_entropy_bits=entropy,
        taken_frac=(taken / branches) if branches else 0.0,
        footprint_blocks=len(blocks_seen),
        reuse_short=(reuse_hits / mem_ops) if mem_ops else 0.0,
        spatial_frac=(spatial_hits / mem_ops) if mem_ops else 0.0,
        phase_transitions=max(0, len(starts) - 1),
        mean_phase_dwell=mean_dwell,
    )


def working_set_curve(
    trace: Trace, window_sizes: Sequence[int] = (256, 1024, 4096, 16384)
) -> Dict[int, float]:
    """Mean distinct 64B blocks touched per window of each size.

    A compact working-set profile: how the touched-set grows with the
    observation window, the quantity cache capacities are sized against.
    """
    curve: Dict[int, float] = {}
    mem = [i.addr >> 6 for i in trace.instructions if i.is_mem]
    if not mem:
        return {w: 0.0 for w in window_sizes}
    for window in window_sizes:
        if window <= 0:
            raise ValueError("window sizes must be positive")
        counts = []
        for start in range(0, len(mem), window):
            chunk = mem[start : start + window]
            if len(chunk) >= window // 2 or start == 0:
                counts.append(len(set(chunk)))
        curve[window] = sum(counts) / len(counts)
    return curve
