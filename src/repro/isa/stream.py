"""Streaming traces: chunked generation behind the ``TraceSource`` protocol.

A :class:`StreamingTrace` is a trace *recipe bound to a window*: it knows
its mixture, length and seed up front, regenerates its instruction stream
on demand through :func:`repro.isa.generator.generate_chunks`, and exposes
the same structural surface the simulators consume from a concrete
:class:`~repro.isa.trace.Trace` — ``len()``, ``decoded()`` columns,
``fingerprint()`` — while keeping only a bounded window of recent chunks
resident.  A million-instruction run therefore holds a few chunks of
columns at a time instead of a million ``Instr`` objects (the RSS bound is
pinned by ``tests/corpus/test_memory.py``).

Access pattern contract
-----------------------
The reference core reads columns inside its in-flight window (between the
commit and fetch points) and sweeps forward; the window serves those reads
from resident chunks and generates forward as the fetch point advances,
evicting chunks that fall behind.  A read *behind* the window restarts
generation from the beginning — correct for any access pattern, merely
slower — and is counted on :attr:`StreamingTrace.restarts` so tests can
assert the expected number of passes.  Code that genuinely needs the whole
trace resident (contests, serialisation) calls :meth:`materialise`.

Chunk size is a runtime knob: it never changes the generated stream or the
fingerprint (``tests/corpus/test_grammar.py``), so it deliberately stays
out of every cache identity.
"""

from typing import Dict, Iterator, List, Optional

from repro.isa.generator import DEFAULT_CHUNK_SIZE, TraceChunk, generate_chunks
from repro.isa.instructions import Instr
from repro.isa.phases import PhaseMix
from repro.isa.trace import Trace, TraceHasher

#: Resident chunks retained behind the newest one.  With the default chunk
#: size this keeps ~32k instructions addressable backwards — comfortably
#: past any core's in-flight window (ROB + fetch queue) — while bounding
#: memory at a few chunks of columns.
_KEEP_CHUNKS = 8


class _ChunkWindow:
    """Bounded cache of recent :class:`TraceChunk` regions of one stream.

    Serves random reads by chunk index: forward misses advance the
    generator (evicting chunks more than ``keep`` behind), backward misses
    restart it from chunk zero.  Restarting is deterministic — generation
    is a pure function of the recipe — so the window only trades time for
    memory, never results.
    """

    def __init__(self, trace: "StreamingTrace", keep: int = _KEEP_CHUNKS) -> None:
        self._trace = trace
        self.chunk_size = trace.chunk_size
        self._keep = max(1, keep)
        self._chunks: Dict[int, TraceChunk] = {}
        self._iter: Optional[Iterator[TraceChunk]] = None
        self._produced = 0  # chunks consumed from the current pass

    def chunk(self, index: int) -> TraceChunk:
        """The chunk containing absolute instruction ``index``."""
        ci = index // self.chunk_size
        got = self._chunks.get(ci)
        if got is not None:
            return got
        if self._iter is None or ci < self._produced:
            self._iter = self._trace.chunks()
            self._produced = 0
            self._chunks.clear()
        while True:
            chunk = next(self._iter)
            self._chunks[self._produced] = chunk
            self._chunks.pop(self._produced - self._keep, None)
            self._produced += 1
            if self._produced > ci:
                return chunk


class _IntColumn:
    """One windowed integer column of a streaming trace (a
    :class:`repro.isa.trace.Column`)."""

    __slots__ = ("_window", "_field", "_length")

    def __init__(self, window: _ChunkWindow, field: str, length: int) -> None:
        self._window = window
        self._field = field
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        chunk = self._window.chunk(index)
        value: int = getattr(chunk, self._field)[index - chunk.start]
        return value

    def __iter__(self) -> Iterator[int]:
        size = self._window.chunk_size
        for start in range(0, self._length, size):
            column: List[int] = getattr(self._window.chunk(start), self._field)
            yield from column


class _BoolColumn:
    """The windowed branch-outcome column of a streaming trace."""

    __slots__ = ("_window", "_length")

    def __init__(self, window: _ChunkWindow, length: int) -> None:
        self._window = window
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> bool:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        chunk = self._window.chunk(index)
        value: bool = chunk.takens[index - chunk.start]
        return value

    def __iter__(self) -> Iterator[bool]:
        size = self._window.chunk_size
        for start in range(0, self._length, size):
            yield from self._window.chunk(start).takens


class StreamingDecoded:
    """Windowed column-major view of a streaming trace.

    Satisfies :class:`repro.isa.trace.DecodedColumns`: six parallel
    columns sharing one :class:`_ChunkWindow`, so the core's interleaved
    per-stage reads (ops at fetch, addrs at issue, takens at commit) hit
    the same resident chunks.
    """

    __slots__ = ("ops", "pcs", "deps1", "deps2", "addrs", "takens")

    def __init__(self, trace: "StreamingTrace") -> None:
        window = _ChunkWindow(trace)
        n = len(trace)
        self.ops = _IntColumn(window, "ops", n)
        self.pcs = _IntColumn(window, "pcs", n)
        self.deps1 = _IntColumn(window, "deps1", n)
        self.deps2 = _IntColumn(window, "deps2", n)
        self.addrs = _IntColumn(window, "addrs", n)
        self.takens = _BoolColumn(window, n)


class StreamingTrace:
    """A trace generated region by region, never fully resident.

    Satisfies the :class:`~repro.isa.trace.TraceSource` protocol, so
    ``run_standalone`` and both backends consume it directly: the
    reference core reads the windowed :meth:`decoded` columns, the
    columnar backend schedules :meth:`chunks` with carried pipeline state.
    ``fingerprint()`` streams the v2 hash recipe and is bit-identical to
    the materialised trace's (``tests/corpus`` pins all three surfaces).
    """

    def __init__(
        self,
        mix: PhaseMix,
        length: int,
        seed: int = 0,
        name: Optional[str] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if length <= 0:
            raise ValueError("a trace must contain at least one instruction")
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        self.mix = mix
        self.name = name or mix.name
        self.length = length
        self.seed = seed
        self.chunk_size = chunk_size
        #: generation passes started (diagnostics; parity tests assert the
        #: expected pass count, the memory test that no pass materialises)
        self.restarts = 0
        self._decoded: Optional[StreamingDecoded] = None
        self._fingerprint: Optional[str] = None
        self._phase_starts: Optional[List[int]] = None

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index: int) -> Instr:
        """Random access to one instruction (windowed; diagnostics only)."""
        decoded = self.decoded()
        return Instr(
            op=decoded.ops[index],
            pc=decoded.pcs[index],
            dep1=decoded.deps1[index],
            dep2=decoded.deps2[index],
            addr=decoded.addrs[index],
            taken=decoded.takens[index],
        )

    def chunks(self) -> Iterator[TraceChunk]:
        """A fresh generation pass over the trace, chunk by chunk."""
        self.restarts += 1
        return generate_chunks(
            self.mix, self.length, self.seed, chunk_size=self.chunk_size
        )

    def decoded(self) -> StreamingDecoded:
        """The cached windowed column view (one shared chunk window)."""
        if self._decoded is None:
            self._decoded = StreamingDecoded(self)
        return self._decoded

    @property
    def phase_starts(self) -> List[int]:
        """Phase-start indices; requires one full pass on first access."""
        if self._phase_starts is None:
            starts: List[int] = []
            for chunk in self.chunks():
                starts.extend(chunk.phase_starts)
            self._phase_starts = starts
        return self._phase_starts

    def fingerprint(self) -> str:
        """Streaming content hash — equal to the materialised trace's."""
        if self._fingerprint is None:
            hasher = TraceHasher()
            starts: List[int] = []
            for chunk in self.chunks():
                hasher.update(
                    chunk.ops, chunk.pcs, chunk.deps1, chunk.deps2,
                    chunk.addrs, chunk.takens,
                )
                starts.extend(chunk.phase_starts)
            self._phase_starts = starts
            self._fingerprint = hasher.digest(self.name, self.seed, starts)
        return self._fingerprint

    def materialise(self) -> Trace:
        """The concrete :class:`Trace` of this recipe (full generation).

        Contested execution re-forks cores at arbitrary points of the
        trace, so :class:`repro.core.system.ContestingSystem` materialises
        streaming traces up front rather than thrash the window.
        """
        instructions: List[Instr] = []
        starts: List[int] = []
        for chunk in self.chunks():
            instructions.extend(chunk.instructions())
            starts.extend(chunk.phase_starts)
        return Trace(
            name=self.name,
            instructions=instructions,
            seed=self.seed,
            phase_starts=starts,
        )

    def __repr__(self) -> str:
        return (
            f"StreamingTrace(name={self.name!r}, len={self.length}, "
            f"seed={self.seed}, chunk={self.chunk_size})"
        )
