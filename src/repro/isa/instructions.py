"""Instruction records for the synthetic traces.

Only timing-relevant information is carried: the microarchitectural models are
trace-driven timing simulators, not functional emulators.
"""

import enum


class OpClass(enum.IntEnum):
    """Operation classes with distinct timing behaviour.

    The integer values are stable and used directly in hot simulator loops.
    """

    IALU = 0      # single-cycle integer op
    IMUL = 1      # multi-cycle integer multiply
    IDIV = 2      # long-latency integer divide
    LOAD = 3      # memory read through the private cache hierarchy
    STORE = 4     # memory write (performed at commit)
    BRANCH = 5    # conditional branch with a trace-recorded outcome
    SYSCALL = 6   # synchronous exception / system call boundary
    NOP = 7       # no result, no dependences


#: Op classes that write a register and can therefore be dependence producers.
PRODUCING_OPS = frozenset(
    {OpClass.IALU, OpClass.IMUL, OpClass.IDIV, OpClass.LOAD}
)

#: Op classes that access data memory.
MEMORY_OPS = frozenset({OpClass.LOAD, OpClass.STORE})


class Instr:
    """One dynamic instruction.

    Attributes
    ----------
    op:
        The :class:`OpClass` (stored as a plain int for speed).
    pc:
        Static instruction identifier; branch predictors index on it.
    dep1, dep2:
        Sequence numbers of the producing instructions this one reads, or
        ``-1`` when the operand is immediate/architecturally ready.  Producers
        always precede consumers in the trace.
    addr:
        Byte address for LOAD/STORE; ``0`` otherwise.
    taken:
        Branch outcome for BRANCH; ``False`` otherwise.
    """

    __slots__ = ("op", "pc", "dep1", "dep2", "addr", "taken")

    def __init__(
        self,
        op: int,
        pc: int,
        dep1: int = -1,
        dep2: int = -1,
        addr: int = 0,
        taken: bool = False,
    ) -> None:
        self.op = int(op)
        self.pc = pc
        self.dep1 = dep1
        self.dep2 = dep2
        self.addr = addr
        self.taken = taken

    @property
    def produces(self) -> bool:
        """Whether this instruction writes a register value."""
        return self.op in PRODUCING_OPS

    @property
    def is_mem(self) -> bool:
        """Whether this instruction accesses data memory."""
        return self.op == OpClass.LOAD or self.op == OpClass.STORE

    def __repr__(self) -> str:
        return (
            f"Instr(op={OpClass(self.op).name}, pc={self.pc:#x}, "
            f"dep1={self.dep1}, dep2={self.dep2}, addr={self.addr:#x}, "
            f"taken={self.taken})"
        )
