"""Synthetic instruction-set substrate.

The paper drives its simulator with 100M-instruction SimPoints of SPEC2000
integer benchmarks.  Those traces (and the Alpha binaries behind them) are not
available here, so this package provides the closest synthetic equivalent:
deterministic trace generators whose *fine-grain phase structure* — the
property the whole paper rests on (Section 2) — is explicit and calibrated
per benchmark.

A trace is a sequence of :class:`~repro.isa.instructions.Instr` records
carrying everything a timing model needs: opcode class, static PC (so branch
predictors can learn), register producer links, memory address, and the
branch outcome.  No functional values are simulated; contesting is a timing
phenomenon and the models in :mod:`repro.uarch` and :mod:`repro.core` only
consume timing-relevant fields.
"""

from repro.isa.generator import generate_trace
from repro.isa.serialize import load_trace, save_trace
from repro.isa.stats import TraceCharacter, characterize, working_set_curve
from repro.isa.instructions import Instr, OpClass
from repro.isa.phases import PhaseMix, PhaseType
from repro.isa.trace import Trace
from repro.isa.workloads import BENCHMARKS, workload_profile

__all__ = [
    "BENCHMARKS",
    "Instr",
    "OpClass",
    "PhaseMix",
    "PhaseType",
    "Trace",
    "TraceCharacter",
    "characterize",
    "generate_trace",
    "load_trace",
    "save_trace",
    "workload_profile",
    "working_set_curve",
]
