"""Fine-grain phase types and phase mixtures.

Section 2 of the paper shows that workload behaviour varies at granularities
of well under a thousand instructions, and that this fine-grain variation is
precisely what contesting exploits.  Our synthetic workloads make that
structure explicit: a workload is a mixture of *phase types* (pointer-chase,
streaming, wide-ILP, branchy, ...), and the generator walks a Markov chain
over them with geometric dwell times of order 10^2–10^3 instructions.

Each phase type pins down the properties the timing models are sensitive to:

* instruction mix (loads/stores/branches/multiplies),
* register dependence structure (chain fraction, dependence window),
* branch predictability (per-static-branch bias),
* memory behaviour (footprint, stride vs. random, pointer chasing),
* static code body size (the PC footprint the branch predictor sees),
* mean dwell time.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PhaseType:
    """A reusable description of one kind of fine-grain program behaviour."""

    name: str

    # --- instruction mix (fractions of dynamic instructions; the remainder
    # --- is single-cycle integer ALU work)
    load_frac: float = 0.20
    store_frac: float = 0.08
    branch_frac: float = 0.12
    imul_frac: float = 0.00
    idiv_frac: float = 0.00

    # --- register dependence structure
    #: probability an instruction has a register source at all; the rest are
    #: immediate-operand work that is ready at dispatch
    dep1_frac: float = 0.60
    #: probability the source comes from the *most recent* producer,
    #: serialising execution into a chain
    chain_frac: float = 0.15
    #: otherwise the producer is drawn uniformly from this many most recent
    #: producers; larger windows mean more extractable ILP
    dep_window: int = 12
    #: probability of a second source operand
    two_src_frac: float = 0.35
    #: branches draw a register source with ``dep1_frac * branch_dep_scale``
    #: probability — conditions are usually computed shortly before the
    #: branch, so most branches resolve quickly once issued
    branch_dep_scale: float = 0.5

    # --- branch behaviour
    #: number of static conditional branches in the phase body
    n_static_branches: int = 8
    #: probability a branch follows its per-static bias direction; values
    #: near 1.0 are highly predictable, near 0.5 unpredictable
    branch_bias: float = 0.92
    #: fraction of static branches whose bias direction is *taken*; taken
    #: branches break the fetch group, so low values model unrolled /
    #: forward-branch-dominated code
    taken_frac: float = 0.5

    # --- memory behaviour
    #: bytes of data touched by the phase
    footprint: int = 64 * 1024
    #: probability a memory access continues the sequential stride stream
    #: (the remainder are skewed-random within the footprint)
    seq_frac: float = 0.5
    #: stride in bytes for the sequential stream
    stride: int = 8
    #: if True, every load depends on the previous load (pointer chasing)
    pointer_chase: bool = False
    #: temporal-locality skew for the random accesses: an access goes to
    #: the object of rank ``floor(N * u**zipf_skew)`` for uniform ``u``
    #: (ranks are hash-scattered over the footprint), so a cache holding
    #: ``C`` bytes of the footprint captures roughly
    #: ``(C/footprint)**(1/zipf_skew)`` of the accesses.  Higher skew =
    #: hotter head.
    zipf_skew: float = 3.0
    #: random accesses walk *dense objects*: each selected object is read as
    #: ``obj_words`` consecutive 8-byte words across successive memory ops.
    #: Density makes byte capacity (not block count) the operative cache
    #: constraint and gives large blocks their spatial-locality advantage.
    obj_words: int = 8

    #: data-region tag: phases in the same mix with the same region share a
    #: base address, modelling program phases that operate on the same data
    #: structures.  Empty string = a private region per phase type.
    region: str = ""

    # --- static code shape
    #: static instruction slots in the phase body (PC footprint)
    body_size: int = 96

    # --- phase scheduling
    #: mean dwell time in dynamic instructions (geometric distribution)
    mean_dwell: int = 300

    #: per-instruction probability of a synchronous exception (syscall)
    syscall_rate: float = 0.0

    def __post_init__(self) -> None:
        mix = (
            self.load_frac
            + self.store_frac
            + self.branch_frac
            + self.imul_frac
            + self.idiv_frac
        )
        if mix >= 1.0:
            raise ValueError(f"instruction mix of {self.name} exceeds 1.0")
        if not 0.5 <= self.branch_bias <= 1.0:
            raise ValueError("branch_bias must lie in [0.5, 1.0]")
        if self.footprint <= 0 or self.stride <= 0:
            raise ValueError("footprint and stride must be positive")
        if self.dep_window < 1 or self.body_size < 4:
            raise ValueError("dep_window >= 1 and body_size >= 4 required")
        if self.mean_dwell < 1:
            raise ValueError("mean_dwell must be >= 1")


@dataclass
class PhaseMix:
    """A named mixture of phase types with stationary selection weights.

    The long-run instruction share of each phase is proportional to
    ``weight * mean_dwell`` (the generator redraws by weight at every dwell
    expiry, self-draws included, so shares follow renewal theory exactly).
    """

    name: str
    entries: List[Tuple[PhaseType, float]] = field(default_factory=list)
    #: optional explicit Markov transition matrix: ``transitions[i][j]`` is
    #: the probability that phase ``j`` follows phase ``i`` at a dwell
    #: expiry (self-transitions allowed).  When omitted, the next phase is
    #: drawn from the stationary ``weights`` regardless of the current one.
    transitions: Optional[List[List[float]]] = None

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a PhaseMix needs at least one phase type")
        names = [p.name for p, _ in self.entries]
        if len(set(names)) != len(names):
            raise ValueError("phase type names within a mix must be unique")
        if any(w <= 0 for _, w in self.entries):
            raise ValueError("phase weights must be positive")
        if self.transitions is not None:
            k = len(self.entries)
            if len(self.transitions) != k or any(
                len(row) != k for row in self.transitions
            ):
                raise ValueError(
                    f"transition matrix must be {k}x{k} to match the phases"
                )
            for row in self.transitions:
                if any(p < 0 for p in row):
                    raise ValueError("transition probabilities must be >= 0")
                if abs(sum(row) - 1.0) > 1e-6:
                    raise ValueError("each transition row must sum to 1")

    @property
    def phase_types(self) -> List[PhaseType]:
        return [p for p, _ in self.entries]

    @property
    def weights(self) -> List[float]:
        return [w for _, w in self.entries]


# ---------------------------------------------------------------------------
# Phase-type factory helpers — the vocabulary the workload profiles are
# built from.  Keyword overrides let profiles fine-tune a template.
# ---------------------------------------------------------------------------


def _make(name: str, base: Dict[str, Any], **overrides: Any) -> PhaseType:
    params = dict(base)
    params.update(overrides)
    return PhaseType(name=name, **params)


def wide_ilp_phase(name: str = "wide_ilp", **overrides: Any) -> PhaseType:
    """Abundant independent integer work; rewards wide, fast cores."""
    base = dict(
        load_frac=0.16,
        store_frac=0.06,
        branch_frac=0.10,
        dep1_frac=0.45,
        chain_frac=0.02,
        dep_window=24,
        two_src_frac=0.30,
        branch_bias=0.97,
        footprint=48 * 1024,
        seq_frac=0.75,
        stride=16,
        body_size=128,
        mean_dwell=350,
    )
    return _make(name, base, **overrides)


def serial_chain_phase(name: str = "serial_chain", **overrides: Any) -> PhaseType:
    """Long ALU dependence chains; rewards zero wakeup latency and a short
    issue-to-issue loop, regardless of width."""
    base = dict(
        load_frac=0.10,
        store_frac=0.04,
        branch_frac=0.08,
        dep1_frac=0.95,
        chain_frac=0.85,
        dep_window=3,
        two_src_frac=0.20,
        branch_bias=0.96,
        footprint=16 * 1024,
        seq_frac=0.8,
        stride=8,
        body_size=64,
        mean_dwell=280,
    )
    return _make(name, base, **overrides)


def pointer_chase_phase(name: str = "pointer_chase", **overrides: Any) -> PhaseType:
    """Serially dependent loads over a footprint; performance is dominated by
    the average load latency, i.e. by which cache level holds the footprint."""
    base = dict(
        load_frac=0.34,
        store_frac=0.04,
        branch_frac=0.10,
        dep1_frac=0.50,
        chain_frac=0.30,
        dep_window=4,
        two_src_frac=0.15,
        branch_bias=0.94,
        footprint=2 * 1024 * 1024,
        seq_frac=0.05,
        stride=8,
        pointer_chase=True,
        body_size=48,
        mean_dwell=320,
    )
    return _make(name, base, **overrides)


def windowed_mem_phase(name: str = "windowed_mem", **overrides: Any) -> PhaseType:
    """Independent scattered loads; rewards a large instruction window that
    can overlap many long-latency misses (memory-level parallelism)."""
    base = dict(
        load_frac=0.30,
        store_frac=0.06,
        branch_frac=0.08,
        dep1_frac=0.40,
        chain_frac=0.03,
        dep_window=28,
        two_src_frac=0.25,
        branch_bias=0.96,
        footprint=1536 * 1024,
        seq_frac=0.10,
        stride=8,
        body_size=96,
        mean_dwell=380,
    )
    return _make(name, base, **overrides)


def stream_phase(name: str = "stream", **overrides: Any) -> PhaseType:
    """Sequential strided access; rewards large cache blocks (spatial
    locality) and modest windows."""
    base = dict(
        load_frac=0.30,
        store_frac=0.12,
        branch_frac=0.08,
        dep1_frac=0.55,
        chain_frac=0.10,
        dep_window=12,
        two_src_frac=0.25,
        branch_bias=0.98,
        footprint=384 * 1024,
        seq_frac=0.95,
        stride=8,
        body_size=64,
        mean_dwell=400,
    )
    return _make(name, base, **overrides)


def branchy_phase(name: str = "branchy", **overrides: Any) -> PhaseType:
    """Branch-dense control flow; the bias parameter sets predictability and
    thereby how much the front-end depth (redirect penalty) hurts."""
    base = dict(
        load_frac=0.16,
        store_frac=0.06,
        branch_frac=0.24,
        dep1_frac=0.60,
        chain_frac=0.20,
        dep_window=8,
        two_src_frac=0.30,
        n_static_branches=24,
        branch_bias=0.88,
        footprint=32 * 1024,
        seq_frac=0.5,
        stride=8,
        body_size=160,
        mean_dwell=260,
    )
    return _make(name, base, **overrides)


def compute_mul_phase(name: str = "compute_mul", **overrides: Any) -> PhaseType:
    """Multiply-heavy arithmetic with moderate ILP."""
    base = dict(
        load_frac=0.12,
        store_frac=0.05,
        branch_frac=0.08,
        imul_frac=0.14,
        dep1_frac=0.70,
        chain_frac=0.25,
        dep_window=10,
        two_src_frac=0.40,
        branch_bias=0.97,
        footprint=24 * 1024,
        seq_frac=0.7,
        stride=8,
        body_size=80,
        mean_dwell=300,
    )
    return _make(name, base, **overrides)


#: The canonical phase-template vocabulary, for documentation and tests.
PHASE_TEMPLATES: Sequence[str] = (
    "wide_ilp",
    "serial_chain",
    "pointer_chase",
    "windowed_mem",
    "stream",
    "branchy",
    "compute_mul",
)
