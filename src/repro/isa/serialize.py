"""Trace serialization: save and reload generated traces.

Traces are deterministic given (profile, length, seed), but generation of
large traces is not free and downstream users may want to archive the exact
traces behind a result.  The format is a compact single-file binary:
a JSON header line (name, seed, length, phase starts, format version)
followed by six little-endian arrays (op, pc, dep1, dep2, addr, taken).
"""

import json
from array import array
from pathlib import Path
from typing import Union

from repro.isa.instructions import Instr
from repro.isa.trace import Trace

#: bump when the on-disk layout changes
FORMAT_VERSION = 1

_MAGIC = b"RTRC"


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (overwrites)."""
    n = len(trace)
    ops = array("B", (i.op for i in trace))
    pcs = array("q", (i.pc for i in trace))
    dep1 = array("q", (i.dep1 for i in trace))
    dep2 = array("q", (i.dep2 for i in trace))
    addr = array("q", (i.addr for i in trace))
    taken = array("B", (1 if i.taken else 0 for i in trace))
    header = json.dumps(
        {
            "version": FORMAT_VERSION,
            "name": trace.name,
            "seed": trace.seed,
            "length": n,
            "phase_starts": trace.phase_starts,
        }
    ).encode()
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(len(header).to_bytes(4, "little"))
        fh.write(header)
        for arr in (ops, pcs, dep1, dep2, addr, taken):
            if arr.itemsize > 1 and __import__("sys").byteorder == "big":
                arr = array(arr.typecode, arr)
                arr.byteswap()
            fh.write(arr.tobytes())


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a trace file (bad magic)")
        header_len = int.from_bytes(fh.read(4), "little")
        header = json.loads(fh.read(header_len).decode())
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace format version "
                f"{header.get('version')!r}"
            )
        n = header["length"]
        ops = array("B")
        ops.frombytes(fh.read(n))
        arrays = []
        for _ in range(4):
            arr = array("q")
            arr.frombytes(fh.read(n * arr.itemsize))
            if __import__("sys").byteorder == "big":
                arr.byteswap()
            arrays.append(arr)
        taken = array("B")
        taken.frombytes(fh.read(n))
    pcs, dep1, dep2, addr = arrays
    instructions = [
        Instr(
            op=ops[i],
            pc=pcs[i],
            dep1=dep1[i],
            dep2=dep2[i],
            addr=addr[i],
            taken=bool(taken[i]),
        )
        for i in range(n)
    ]
    return Trace(
        name=header["name"],
        instructions=instructions,
        seed=header["seed"],
        phase_starts=header["phase_starts"],
    )
