"""Workload profiles for the eleven SPEC2000 integer benchmarks.

The paper's traces are 100M-instruction SimPoints of SPEC2000int compiled for
SimpleScalar.  We substitute one synthetic :class:`PhaseMix` per benchmark,
calibrated against the Appendix-A core palette so that

* each benchmark achieves its best whole-trace IPT on its own customised
  core (the paper's Appendix-A matrix has this diagonal-dominance property),
* a balanced large-cache core anchors the homogeneous (HOM) design the way
  the gcc core does in the paper (in this substrate the twolf, bzip and gcc
  cores are near-tied at the top of the average/harmonic-mean rankings; the
  experiments compute HOM as the argmax, as the paper's methodology does),
  and
* every profile carries minority phases that favour *other* cores — the
  fine-grain headroom contesting exploits (Section 2).

Calibration was done empirically: each phase template was run standalone on
all eleven cores (a phase-to-core affinity scan) and profiles were composed
from phases whose affinity anchors the target core, plus contrasting
minority phases.  The calibration invariants are enforced by
``tests/calibration``.

Phase-vocabulary notes (what anchors what, in this timing model):

* pure ALU dependence chains reward the two zero-wakeup-latency cores; the
  mcf core has the faster clock of the two (0.45 vs 0.49ns), so strictly
  serial code is *mcf's* anchor while chains mixed with small-footprint
  loads are *bzip's* (its 2-cycle L1 vs mcf's 5-cycle).
* near-independent instruction streams are *crafty's* anchor: its 8-wide
  0.19ns pipe wins exactly when the 64-entry ROB's residency stays short.
* latency-tolerant ILP with real dependence structure is *perl's* anchor
  (same clock as crafty but a 256-entry ROB).
* pointer chasing is won by whichever core holds the footprint closest to
  the pipeline: 12KB -> gap's fast small L1, ~110KB -> parser's 128KB
  3-cycle L1, ~300KB -> gzip's fast 512KB L2, ~1MB -> gcc's hierarchy.
* scattered windowed loads reward window+MSHRs and the cache tier that
  bounds the footprint: ~200KB -> vortex, ~600KB -> twolf, ~1.5MB -> vpr.
"""

from typing import Any, Dict, List

from repro.isa.phases import (
    PhaseMix,
    PhaseType,
    branchy_phase,
    compute_mul_phase,
    pointer_chase_phase,
    serial_chain_phase,
    stream_phase,
    wide_ilp_phase,
    windowed_mem_phase,
)

KB = 1024
MB = 1024 * 1024

#: Multiplier applied to every phase template's mean dwell when building the
#: benchmark profiles (see the note at the end of ``_profiles``).
DWELL_SCALE = 3

#: Benchmark names in the paper's order (eon is excluded in the paper too).
BENCHMARKS = (
    "bzip",
    "crafty",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perl",
    "twolf",
    "vortex",
    "vpr",
)


# --- shared, calibrated phase instances ------------------------------------
# Several benchmarks share a template instantiation (with its own name per
# profile); the factory functions below centralise the calibrated parameters.


def _pure_serial(name: str, **kw: Any) -> PhaseType:
    """Strictly serial ALU chains: the mcf-core anchor (fast 0-wakeup clock)."""
    base = dict(
        load_frac=0.005,
        store_frac=0.015,
        branch_frac=0.04,
        chain_frac=0.985,
        dep1_frac=0.98,
        footprint=8 * KB,
        branch_bias=0.985,
        taken_frac=0.4,
    )
    base.update(kw)
    return serial_chain_phase(name, **base)


def _serial_ld(name: str, **kw: Any) -> PhaseType:
    """Serial chains mixed with small-footprint loads: the bzip-core anchor."""
    base = dict(load_frac=0.14, footprint=40 * KB)
    base.update(kw)
    return serial_chain_phase(name, **base)


def _ilp_pure(name: str, **kw: Any) -> PhaseType:
    """Near-independent scheduled code: the crafty-core anchor."""
    base = dict(
        dep1_frac=0.05,
        two_src_frac=0.02,
        dep_window=64,
        load_frac=0.06,
        store_frac=0.03,
        branch_frac=0.06,
        branch_bias=0.995,
        taken_frac=0.05,
        footprint=48 * KB,
    )
    base.update(kw)
    return wide_ilp_phase(name, **base)


def _ilp_sparse(name: str, **kw: Any) -> PhaseType:
    """Latency-tolerant ILP with real dependences: the perl-core anchor."""
    base = dict(
        dep1_frac=0.30,
        dep_window=48,
        taken_frac=0.15,
        branch_bias=0.985,
        footprint=80 * KB,
    )
    base.update(kw)
    return wide_ilp_phase(name, **base)


def _divwin(name: str) -> PhaseType:
    """Divide-heavy window filler; rewards deep windows at a fast clock."""
    return PhaseType(
        name,
        load_frac=0.08,
        store_frac=0.03,
        branch_frac=0.08,
        idiv_frac=0.10,
        dep1_frac=0.40,
        dep_window=32,
        two_src_frac=0.2,
        branch_bias=0.97,
        taken_frac=0.3,
        footprint=12 * KB,
        seq_frac=0.6,
        body_size=96,
        mean_dwell=300,
    )


def _chase(name: str, footprint: int, **kw: Any) -> PhaseType:
    base = dict(footprint=footprint, obj_words=2, zipf_skew=1.5)
    base.update(kw)
    return pointer_chase_phase(name, **base)


def _win(name: str, footprint: int, **kw: Any) -> PhaseType:
    base = dict(footprint=footprint, obj_words=2, zipf_skew=1.5)
    base.update(kw)
    return windowed_mem_phase(name, **base)


def _profiles() -> Dict[str, PhaseMix]:
    profiles: Dict[str, PhaseMix] = {}

    # Weights are chosen as (target instruction share) / (template dwell), so
    # the dwell-weighted stationary shares land on the targets given in the
    # comments.  Every profile pairs a dominant *anchor* (won by the
    # benchmark's own core) with a *contrast* phase decisively won by a
    # different core — the systematic fine-grain complementarity contesting
    # exploits — plus minor flavour phases.

    # bzip2 — serial arithmetic over small tables (anchor ~45%), table
    # lookups, entropy coding, data-dependent branches, and scattered
    # ~200KB object access (contrast: the vortex-style wide cores win it).
    profiles["bzip"] = PhaseMix(
        "bzip",
        [
            (_serial_ld("serial_ld"), 1.72),
            (_chase("tables", 64 * KB), 0.63),
            (compute_mul_phase("entropy"), 0.33),
            (branchy_phase("data_branches", branch_bias=0.85), 0.38),
            (_win("blocks", 200 * KB), 0.30),
        ],
    )

    # crafty — unrolled bitboard ILP (anchor ~65%), latency-tolerant
    # evaluation (contrast: perl's deep window wins it), predictable search
    # control, hash-table probes.
    profiles["crafty"] = PhaseMix(
        "crafty",
        [
            (_ilp_pure("bitboards"), 4.6),
            (_ilp_sparse("evaluate"), 1.1),
            (branchy_phase("search", branch_bias=0.975, n_static_branches=48), 0.5),
            (_chase("hash_tables", 110 * KB), 0.3),
        ],
    )

    # gap — interpreter workspace chase (anchor ~55%), divide-heavy bignum
    # kernels (contrast: perl), dispatch branches, multiplies.
    profiles["gap"] = PhaseMix(
        "gap",
        [
            (_chase("workspace", 12 * KB), 1.72),
            (_divwin("bignum"), 0.67),
            (branchy_phase("dispatch", branch_bias=0.91), 0.58),
            (compute_mul_phase("arith"), 0.33),
        ],
    )

    # gcc — IR pointer chase over ~1MB (anchor ~28%, and the dominant share
    # of run *time*), block-strided sweeps, parsing branches, register
    # allocation ILP, scattered symbol access (contrast: vpr/twolf).
    profiles["gcc"] = PhaseMix(
        "gcc",
        [
            (_chase("ir_walk", 1 * MB), 2.5),
            (stream_phase("rtl_sweep", footprint=384 * KB, stride=48, taken_frac=0.25), 1.3),
            (branchy_phase("parse", branch_bias=0.91), 1.2),
            (wide_ilp_phase("regalloc", taken_frac=0.25), 1.0),
            (_win("symbols", 3 * MB, zipf_skew=1.2), 0.4),
            (_pure_serial("liveness"), 0.36),
            (stream_phase("emit", footprint=128 * KB, stride=8, taken_frac=0.25), 0.5),
        ],
    )

    # gzip — hash-table probing over ~300KB (anchor ~45%), match branches,
    # window streaming, and tight unrolled CRC loops (contrast: crafty).
    profiles["gzip"] = PhaseMix(
        "gzip",
        [
            (_chase("hash_probe", 300 * KB), 1.41),
            (branchy_phase("match", branch_bias=0.91), 0.77),
            (stream_phase("window", footprint=128 * KB, stride=8, taken_frac=0.25), 0.38),
            (_ilp_pure("crc"), 0.57),
            (_pure_serial("huffman"), 0.43),
        ],
    )

    # mcf — strictly serial arc-cost chains (anchor ~75%), scattered node
    # access (contrast: gzip's fast L2 wins it), pivoting branches,
    # divide-heavy cost kernels.
    profiles["mcf"] = PhaseMix(
        "mcf",
        [
            (_pure_serial("arc_chain"), 2.68),
            (_chase("nodes", 300 * KB), 0.25),
            (branchy_phase("pivoting", branch_bias=0.85), 0.35),
            (_divwin("costs"), 0.27),
        ],
    )

    # parser — dictionary chase over ~110KB (anchor ~42%), sentence
    # streaming, tight morphology loops (contrast: crafty), linked lookups,
    # rule branches.
    profiles["parser"] = PhaseMix(
        "parser",
        [
            (_chase("dictionary", 110 * KB), 1.31),
            (stream_phase("sentence", footprint=128 * KB, stride=8, taken_frac=0.25), 0.45),
            (_ilp_pure("morphology"), 0.46),
            (_chase("links", 64 * KB), 0.38),
            (branchy_phase("rules", branch_bias=0.91), 0.46),
            (_pure_serial("count_chain"), 0.36),
            (stream_phase("affix_scan", footprint=384 * KB, stride=48, taken_frac=0.25), 0.15),
        ],
    )

    # perl — latency-tolerant opcode ILP (anchor), divide-heavy numerics,
    # dispatch branches, small symbol chase (contrast: bzip/gzip serial-ish
    # regions favour the slow-clock cores).
    profiles["perl"] = PhaseMix(
        "perl",
        [
            (_ilp_sparse("oploop"), 3.0),
            (_divwin("numeric"), 2.0),
            (branchy_phase("dispatch", branch_bias=0.975, n_static_branches=48), 1.0),
            (_chase("symbols", 12 * KB), 0.4),
        ],
    )

    # twolf — dense cell-array sweeps (anchor ~34%), scattered ~600KB cost
    # lookups, accept/reject branches, serial cost accumulation (contrast:
    # bzip), coarse netlist sweeps.
    profiles["twolf"] = PhaseMix(
        "twolf",
        [
            (stream_phase("cells", footprint=128 * KB, stride=8, taken_frac=0.25), 0.85),
            (_win("costs", 600 * KB), 0.63),
            (branchy_phase("anneal", branch_bias=0.85), 0.54),
            (_serial_ld("accum"), 0.57),
            (stream_phase("nets", footprint=3 * MB, stride=192, taken_frac=0.25), 0.30),
        ],
    )

    # vortex — scattered object access over ~200KB (anchor ~45%), manager
    # ILP and validation numerics (contrast: perl), journal streaming.
    profiles["vortex"] = PhaseMix(
        "vortex",
        [
            (_win("objects", 200 * KB), 1.18),
            (_ilp_sparse("managers"), 0.71),
            (_divwin("validate"), 0.60),
            (stream_phase("journal", footprint=128 * KB, stride=8, taken_frac=0.25), 0.30),
        ],
    )

    # vpr — scattered routing-resource lookups over ~1.5MB (anchor ~42%),
    # predictable route loops, timing multiplies, inner-loop ILP (contrast:
    # twolf/gcc trade blows on the lookups; perl on the ILP).
    profiles["vpr"] = PhaseMix(
        "vpr",
        [
            (_win("rr_graph", 1536 * KB), 1.11),
            (branchy_phase("route", branch_bias=0.975, n_static_branches=48), 0.77),
            (compute_mul_phase("timing"), 0.60),
            (wide_ilp_phase("inner", taken_frac=0.25), 0.57),
            (_pure_serial("accumulate"), 0.36),
        ],
    )

    # All phases of a benchmark operate on the same data region ("heap"):
    # a program's phases revisit the same structures, so the cache working
    # set is shared rather than one disjoint region per phase.  (Phases keep
    # private PC regions for the branch predictor.)
    #
    # Phase dwells are scaled so the typical contiguous phase run is
    # ~800-1300 instructions.  This matches the paper's Figure-1 knee (most
    # oracle-switching benefit is gone by the 1280-instruction granularity,
    # i.e. real phase runs are of that order) and it is the regime in which
    # leadership can actually transfer: a phase run must outlast the losing
    # core's in-flight window before the winning core's retirement passes
    # the loser's fetch point (Section 4.1.4's lagging-distance argument).
    from dataclasses import replace

    for mix in profiles.values():
        mix.entries = [
            (replace(p, region="heap", mean_dwell=p.mean_dwell * DWELL_SCALE), w)
            for p, w in mix.entries
        ]
    return profiles


_PROFILES = _profiles()


def workload_profile(name: str) -> PhaseMix:
    """Return the phase mixture for a benchmark (see :data:`BENCHMARKS`)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {', '.join(BENCHMARKS)}"
        ) from None


def all_profiles() -> List[PhaseMix]:
    """All benchmark profiles in the paper's order."""
    return [workload_profile(b) for b in BENCHMARKS]
